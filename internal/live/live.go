// Package live is the real-concurrency runtime: one goroutine per peer,
// a pluggable transport as the links, and wall-clock tickers for gossip
// rounds. It runs the same content-mode FairGossip protocol as
// internal/core but against Go's scheduler instead of the deterministic
// simulator — the form a deployed system (and the runnable examples)
// would use.
//
// Messages move as encoded bytes: each round a peer packs its selected
// events into one wire envelope (internal/wire) and hands the bytes to
// its transport endpoint (internal/transport); receivers decode into
// events they own outright. The default ChanTransport delivers the
// bytes in-process; Config.Transport swaps in real loopback UDP sockets
// (transport.UDP()) with no protocol change. Because the envelope
// encoding is sized exactly like the accounting formula the ledger has
// always charged (wire.EnvelopeSize == gossip.MsgWireSize), the
// contribution a peer is billed is literally the number of bytes put on
// the wire.
//
// Membership is a partial view, not a roster: each peer runs the Cyclon
// view-shuffling protocol (membership.Cyclon) as real wire traffic —
// shuffle offers and replies are encoded envelopes, charged to the
// fairness ledger as infrastructure contribution, byte for byte
// (wire.MembershipSize is both the encoded and the charged size).
// Partner selection samples the peer's current view; nothing on the
// gossip path reads a full membership list, which is what lets clusters
// grow while running: Join boots a new peer mid-run that announces
// itself to a seed and integrates through ordinary shuffles. Hostile or
// stale view entries (a crashed peer, a garbage id off the wire) are
// self-healing: they age, become shuffle targets, draw no reply, and
// are culled — every send they attract lands in a counted drop bucket.
//
// Concurrency model: each peer's protocol state is owned by its single
// goroutine. External calls (Subscribe, Publish) are funneled into the
// peer loop through a command channel and executed there, so no protocol
// state needs locks. The peer table itself lives behind an atomic
// pointer and grows copy-on-write (peers never move), so Join does not
// block running peers. The shared fairness.Ledger is internally
// synchronised. A peer whose inbox overflows drops messages, which is
// exactly how a saturated UDP socket behaves — except here every such
// drop is counted (see Traffic), so load can never lose messages
// invisibly.
package live

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fairgossip/internal/adaptive"
	"fairgossip/internal/fairness"
	"fairgossip/internal/gossip"
	"fairgossip/internal/membership"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
	"fairgossip/internal/transport"
	"fairgossip/internal/wire"
)

// Config parameterises a live cluster.
type Config struct {
	// N is the number of founding peers (minimum 2); Join can grow the
	// population afterwards.
	N int
	// Fanout and Batch are the initial (or static) levers. Defaults 4/8.
	Fanout int
	Batch  int
	// RoundPeriod is the gossip period (default 20ms — examples want to
	// finish quickly; a WAN deployment would use 1s+).
	RoundPeriod time.Duration
	// TargetRatio > 0 enables the AIMD fairness controller with that
	// contribution-per-benefit target; 0 keeps static levers.
	TargetRatio float64
	// ControlWindow is rounds between controller updates (default 5).
	ControlWindow int
	// InboxDepth is the per-peer channel buffer (default 1024).
	InboxDepth int
	// BufferMaxAge is how many rounds an event stays forwardable
	// (default 8; raise it for bursty publication loads).
	BufferMaxAge int
	// Policy is the SELECTEVENTS policy (default random; least-sent
	// guarantees fresh events win send slots under backlog).
	Policy gossip.Policy
	// ViewCap is each peer's partial-view capacity (default 16),
	// ShuffleLen the entries exchanged per Cyclon shuffle (default 8,
	// clamped to ViewCap), ShuffleEvery the rounds between a peer's
	// shuffle initiations (default 2).
	ViewCap      int
	ShuffleLen   int
	ShuffleEvery int
	// EvictStrikes is the failure detector's threshold: a view entry
	// whose peer leaves this many consecutive shuffle offers unanswered
	// is evicted and quarantined (default 3). The detector rides the
	// ordinary Cyclon traffic — no extra probe messages, no extra bytes.
	EvictStrikes int
	// QuarantineRounds is how many rounds an evicted address is refused
	// from incoming view entries before it gets the benefit of the
	// doubt again (default 64). Direct contact lifts it immediately.
	QuarantineRounds int
	// JoinAttempts bounds how many times an isolated joiner re-announces
	// itself before giving up (default 8). Attempts are spaced by capped
	// exponential backoff with seeded jitter; a give-up is surfaced by
	// JoinErr and counted in Traffic().JoinGiveUps.
	JoinAttempts int
	// JoinBackoffCap caps the backoff between announcements, in
	// membership rounds (default 16).
	JoinBackoffCap int
	// Seed drives per-peer randomness (peer i uses Seed^i).
	Seed int64
	// Transport selects the message substrate: nil means in-process
	// channel delivery (transport.Chan(), the historical semantics);
	// transport.UDP() runs one real loopback datagram socket per peer.
	// Any custom Factory plugs in the same way.
	Transport transport.Factory
	// Shape, when non-nil, wraps the transport in the shaping middleware
	// (transport.Shape) with this initial profile — per-link delay,
	// jitter, reorder, loss, bandwidth policing and regional outages, all
	// from a seeded RNG. The zero Profile is inert but still installs the
	// middleware, which is what lets SetShape/SetOutage act mid-run. A
	// zero Profile.Seed is filled from Config.Seed. Nil keeps the
	// transport bare (the historical semantics, byte for byte).
	Shape *transport.Profile
}

func (c Config) withDefaults() Config {
	if c.N < 2 {
		c.N = 2
	}
	if c.Fanout <= 0 {
		c.Fanout = 4
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.RoundPeriod <= 0 {
		c.RoundPeriod = 20 * time.Millisecond
	}
	if c.ControlWindow <= 0 {
		c.ControlWindow = 5
	}
	if c.InboxDepth <= 0 {
		c.InboxDepth = 1024
	}
	if c.BufferMaxAge <= 0 {
		c.BufferMaxAge = 8
	}
	if c.Policy == 0 {
		c.Policy = gossip.PolicyRandom
	}
	if c.ViewCap <= 0 {
		c.ViewCap = 16
	}
	if c.ShuffleLen <= 0 {
		c.ShuffleLen = 8
	}
	if c.ShuffleLen > c.ViewCap {
		c.ShuffleLen = c.ViewCap
	}
	if c.ShuffleEvery <= 0 {
		c.ShuffleEvery = 2
	}
	if c.EvictStrikes <= 0 {
		c.EvictStrikes = 3
	}
	if c.QuarantineRounds <= 0 {
		c.QuarantineRounds = 64
	}
	if c.JoinAttempts <= 0 {
		c.JoinAttempts = 8
	}
	if c.JoinBackoffCap <= 0 {
		c.JoinBackoffCap = 16
	}
	return c
}

// faults is the cluster-wide fault-injection state (per-peer state —
// crashed, free-riding, partition group — lives on the peer structs, so
// it grows with the cluster). Scenario drivers flip it from outside the
// peer goroutines, so every field is atomic; the zero value injects
// nothing.
type faults struct {
	split atomic.Bool
	loss  atomic.Uint64 // i.i.d. link-loss probability, stored as float64 bits
}

// dropLink reports whether a message from -> to should be lost to an
// injected fault. rng is the sender's own stream (loss draws stay
// per-goroutine).
func (f *faults) dropLink(from, to *peer, rng *rand.Rand) bool {
	if to.down.Load() {
		return true
	}
	if f.split.Load() && from.group.Load() != to.group.Load() {
		return true
	}
	if p := math.Float64frombits(f.loss.Load()); p > 0 && rng.Float64() < p {
		return true
	}
	return false
}

// traffic is the cluster's envelope-level message accounting, mirroring
// what simnet counts for the simulator. Everything is atomic: senders,
// transport readers and observers touch it concurrently.
type traffic struct {
	sent           atomic.Uint64
	recv           atomic.Uint64
	faultDrops     atomic.Uint64
	inboxDrops     atomic.Uint64
	transportDrops atomic.Uint64
	malformed      atomic.Uint64
	joinGiveUps    atomic.Uint64
}

// Traffic is a snapshot of the cluster's envelope-level counters. The
// conservation identity Sent == Recv + Dropped holds exactly on the
// chan transport at any quiescent point, and on UDP once the transport
// has quiesced (Stop does that) — a shortfall means the network lost
// datagrams the runtime could not see.
type Traffic struct {
	// Sent counts send attempts, one per (envelope, destination). The
	// sender is charged for every attempt.
	Sent uint64
	// Recv counts envelopes accepted into a peer's inbox.
	Recv uint64
	// Dropped is every counted loss: FaultDrops + InboxDrops +
	// TransportDrops + ShaperDrops. A message can only land in one
	// bucket: the fault check runs before the envelope reaches the
	// shaper, and the shaper's internal verdicts (outage, loss,
	// bandwidth) are mutually exclusive — so shaping composed with
	// scenario faults never double-counts a loss.
	Dropped uint64
	// FaultDrops: injected faults ate it (crashed destination,
	// partition, i.i.d. loss).
	FaultDrops uint64
	// InboxDrops: the destination's inbox was full — the bug this
	// counter exists for used to be silent.
	InboxDrops uint64
	// TransportDrops: the transport refused or failed the send
	// (oversized datagram, closed socket, an address nobody holds).
	TransportDrops uint64
	// ShaperDrops: the shaping middleware ate it (profile loss, a
	// policed bandwidth cap, a regional-outage boundary, or a deferred
	// delivery the substrate refused). Zero unless Config.Shape
	// installed the shaper.
	ShaperDrops uint64
	// Malformed counts received envelopes that failed to decode or
	// carried an invalid sender (a subset of Recv, not of Dropped).
	Malformed uint64
	// JoinGiveUps counts joiners that abandoned the handshake after
	// Config.JoinAttempts announcements (not part of Dropped: nothing
	// was sent, which is the point of giving up).
	JoinGiveUps uint64
}

// Cluster is a set of live peers. Create with NewCluster, then Start;
// Join grows a running cluster; Stop blocks until every peer goroutine
// has exited.
type Cluster struct {
	cfg     Config
	ledger  *fairness.Ledger
	peers   atomic.Pointer[[]*peer] // copy-on-write: Join appends, peers never move
	faults  *faults
	net     transport.Net
	shaped  *transport.ShapedNet // non-nil iff Config.Shape installed the middleware
	traffic traffic

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool       //fair:guardedby mu
	stopped bool       //fair:guardedby mu
	mu      sync.Mutex // guards started/stopped and structural growth (Join)
}

type peer struct {
	id       int
	c        *Cluster
	rng      *rand.Rand
	tr       transport.Transport
	inbox    chan []byte
	cmds     chan func()
	buffer   *gossip.Buffer
	seen     *gossip.SeenSet
	in       pubsub.Interest
	ctrl     adaptive.Controller
	cyclon   *membership.Cyclon
	joinSeed int // seed to (re)announce to while the view is empty; -1 for founders
	fanout   int
	batch    int
	rounds   int
	last     fairness.Account
	pubSeq   uint32
	deliver  func(*pubsub.Event)

	// Failure-detector state (peer-goroutine-owned): the outstanding
	// shuffle probe and the evidence ledger behind eviction decisions.
	det        detector
	probe      simnet.NodeID // current unanswered shuffle target, or None
	probeEntry membership.Entry

	// Join-handshake backoff (peer-goroutine-owned except the flag,
	// which JoinErr reads from outside).
	joinAttempts int
	joinWait     int // membership rounds to sit out before re-announcing
	joinFailed   atomic.Bool

	// Per-peer fault state (atomic: scenario drivers flip it from
	// outside the peer goroutine).
	down  atomic.Bool
	free  atomic.Bool
	group atomic.Int32

	env     wire.Envelope      // decode scratch: backing arrays are reused
	targets []simnet.NodeID    // SampleInto scratch for partner selection
	sample  []int              // int-converted partner scratch
	sel     []*pubsub.Event    // SelectInto scratch: the selection dies at encode
	entOut  []wire.ViewEntry   // membership encode scratch
	entIn   []membership.Entry // membership decode conversion scratch
}

// NewCluster builds a stopped cluster. The only error source is the
// transport factory (socket transports can fail to bind); the default
// in-process transport never fails.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	factory := cfg.Transport
	if factory == nil {
		factory = transport.Chan()
	}
	nw, err := factory(cfg.N)
	if err != nil {
		return nil, err
	}
	var shaped *transport.ShapedNet
	if cfg.Shape != nil {
		prof := *cfg.Shape
		if prof.Seed == 0 {
			prof.Seed = cfg.Seed ^ 0x5ead
		}
		shaped = transport.Shape(nw, prof)
		nw = shaped
	}
	c := &Cluster{
		cfg:    cfg,
		ledger: fairness.NewLedger(cfg.N, fairness.DefaultWeights()),
		faults: &faults{},
		net:    nw,
		shaped: shaped,
		stop:   make(chan struct{}),
	}
	peers := make([]*peer, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		p := c.newPeer(i)
		tr, err := nw.Attach(i, p.ingress)
		if err != nil {
			_ = nw.Close()
			return nil, err
		}
		p.tr = tr
		peers = append(peers, p)
	}
	// Bootstrap overlay views with random contacts (a join service in a
	// deployed system; free here, like handing out a seed-peer list —
	// late joiners pay for their introduction instead, see Join).
	boot := rand.New(rand.NewSource(cfg.Seed + 7))
	k := cfg.ViewCap / 2
	if k < 3 {
		k = 3
	}
	if k > cfg.N-1 {
		k = cfg.N - 1
	}
	for _, p := range peers {
		for added := 0; added < k; added++ {
			cand := boot.Intn(cfg.N)
			if cand == p.id {
				added--
				continue
			}
			p.cyclon.View().Add(simnet.NodeID(cand))
		}
	}
	c.peers.Store(&peers)
	return c, nil
}

// newPeer builds one peer's protocol state (transport endpoint attached
// by the caller).
func (c *Cluster) newPeer(id int) *peer {
	cfg := c.cfg
	var ctrl adaptive.Controller
	if cfg.TargetRatio > 0 {
		ctrl = adaptive.NewAIMD(adaptive.Config{
			TargetRatio: cfg.TargetRatio,
			Limits:      adaptive.DefaultLimits(cfg.N),
		}, adaptive.LeverBoth, cfg.Fanout, cfg.Batch)
	} else {
		ctrl = adaptive.Static{F: cfg.Fanout, N: cfg.Batch}
	}
	p := &peer{
		id:       id,
		c:        c,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(id*2654435761+1))),
		inbox:    make(chan []byte, cfg.InboxDepth),
		cmds:     make(chan func(), 64),
		buffer:   gossip.NewBuffer(256, cfg.BufferMaxAge),
		seen:     gossip.NewSeenSet(8192),
		ctrl:     ctrl,
		cyclon:   membership.NewCyclon(membership.NewView(simnet.NodeID(id), cfg.ViewCap), cfg.ShuffleLen),
		joinSeed: -1,
		det:      newDetector(cfg.EvictStrikes, cfg.QuarantineRounds),
		probe:    simnet.None,
	}
	p.fanout, p.batch = ctrl.Fanout(), ctrl.Batch()
	return p
}

// peerList returns the current peer table (immutable snapshot).
func (c *Cluster) peerList() []*peer { return *c.peers.Load() }

// peerAt returns peer id, or nil when id is not (yet) in the table.
func (c *Cluster) peerAt(id int) *peer {
	peers := c.peerList()
	if id < 0 || id >= len(peers) {
		return nil
	}
	return peers[id]
}

// N returns the current population size (founders plus joiners).
func (c *Cluster) N() int { return len(c.peerList()) }

// Ledger exposes the shared fairness ledger (safe for concurrent reads).
func (c *Cluster) Ledger() *fairness.Ledger { return c.ledger }

// Report returns the cluster-wide fairness report.
func (c *Cluster) Report() fairness.Report { return c.ledger.Report() }

// Traffic returns the cluster's envelope-level traffic counters.
func (c *Cluster) Traffic() Traffic {
	t := Traffic{
		Sent:           c.traffic.sent.Load(),
		Recv:           c.traffic.recv.Load(),
		FaultDrops:     c.traffic.faultDrops.Load(),
		InboxDrops:     c.traffic.inboxDrops.Load(),
		TransportDrops: c.traffic.transportDrops.Load(),
		Malformed:      c.traffic.malformed.Load(),
		JoinGiveUps:    c.traffic.joinGiveUps.Load(),
	}
	if c.shaped != nil {
		t.ShaperDrops = c.shaped.Drops()
	}
	t.Dropped = t.FaultDrops + t.InboxDrops + t.TransportDrops + t.ShaperDrops
	return t
}

// Addr returns peer id's transport address ("chan://3" in-process, a
// real socket address on UDP), or "" for invalid ids.
func (c *Cluster) Addr(id int) string {
	p := c.peerAt(id)
	if p == nil {
		return ""
	}
	return p.tr.LocalAddr()
}

// Start launches every peer goroutine. Idempotent.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started || c.stopped {
		return
	}
	c.started = true
	for _, p := range c.peerList() {
		p := p
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			p.loop()
		}()
	}
}

// Join boots a new peer into the cluster through seed: the joiner gets
// a fresh transport endpoint (on UDP, a newly bound socket), a view
// holding only the seed's address, and a goroutine that announces
// itself with a join envelope — real, ledger-charged infrastructure
// traffic — then integrates through ordinary view shuffles. It returns
// the new peer's id. Joining is legal before Start (the peer launches
// with the rest) or while the cluster runs; after Stop it fails.
func (c *Cluster) Join(seed int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return 0, fmt.Errorf("live: cluster is stopped")
	}
	peers := c.peerList()
	if seed < 0 || seed >= len(peers) {
		return 0, fmt.Errorf("live: seed peer %d out of range [0,%d)", seed, len(peers))
	}
	id := len(peers)
	p := c.newPeer(id)
	p.joinSeed = seed
	p.cyclon.View().Add(simnet.NodeID(seed))
	tr, err := c.net.Attach(id, p.ingress)
	if err != nil {
		// Nothing to roll back: the ledger has not grown yet (Grow has
		// no inverse, and a phantom account would skew fairness reports
		// and admit forged sender ids).
		return 0, fmt.Errorf("live: attach joining peer %d: %w", id, err)
	}
	p.tr = tr
	// Grow the ledger before the peer becomes visible: the joiner's id
	// first reaches the wire after the table store below, so any peer
	// that can observe it is already able to account for it.
	c.ledger.Grow(id + 1)
	grown := make([]*peer, id+1)
	copy(grown, peers)
	grown[id] = p
	c.peers.Store(&grown)
	if c.started {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			p.loop()
		}()
	}
	return id, nil
}

// Stop signals every peer to exit, waits for them, then closes the
// transport (for sockets that includes a bounded quiesce, so traffic
// counters are settled when Stop returns). Idempotent.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	started := c.started
	c.stopped = true
	c.mu.Unlock()
	if started {
		close(c.stop)
		c.wg.Wait()
	}
	_ = c.net.Close()
}

// do runs fn with exclusive access to peer id's state and waits for it to
// complete: inline before Start (setup is single-threaded), through the
// peer's command channel afterwards. It returns false if the cluster is
// stopped or the id is invalid.
func (c *Cluster) do(id int, fn func()) bool {
	p := c.peerAt(id)
	if p == nil {
		return false
	}
	c.mu.Lock()
	started, stopped := c.started, c.stopped
	c.mu.Unlock()
	if stopped {
		return false
	}
	if !started {
		fn()
		return true
	}
	done := make(chan struct{})
	select {
	case p.cmds <- func() { fn(); close(done) }:
	case <-c.stop:
		return false
	}
	select {
	case <-done:
		return true
	case <-c.stop:
		return false
	}
}

// Subscribe registers a filter on a peer and returns its subscription ID.
func (c *Cluster) Subscribe(id int, f pubsub.Filter) (pubsub.SubID, bool) {
	var sub pubsub.SubID
	ok := c.do(id, func() {
		p := c.peerAt(id)
		sub = p.in.Subscribe(f)
		c.ledger.SetFilters(id, p.in.Count())
	})
	return sub, ok
}

// Unsubscribe removes a subscription from a peer.
func (c *Cluster) Unsubscribe(id int, sub pubsub.SubID) bool {
	removed := false
	ok := c.do(id, func() {
		p := c.peerAt(id)
		removed = p.in.Unsubscribe(sub)
		c.ledger.SetFilters(id, p.in.Count())
	})
	return ok && removed
}

// OnDeliver installs a delivery observer on a peer (call before or after
// Start; it runs on the peer's goroutine). The delivered event is never
// shared with another peer's goroutine (each receiver decodes its own
// copy off the wire), but it IS the copy this peer keeps buffered for
// forwarding — treat it as read-only, or the peer forwards the
// mutation.
func (c *Cluster) OnDeliver(id int, fn func(*pubsub.Event)) bool {
	return c.do(id, func() { c.peerAt(id).deliver = fn })
}

// Levers reports a peer's current fanout and batch levers (synchronised
// through the peer's own goroutine).
func (c *Cluster) Levers(id int) (fanout, batch int, ok bool) {
	ok = c.do(id, func() {
		p := c.peerAt(id)
		fanout, batch = p.fanout, p.batch
	})
	return fanout, batch, ok
}

// View returns a snapshot of a peer's current partial view
// (synchronised through the peer's own goroutine), or nil for invalid
// ids.
func (c *Cluster) View(id int) []int {
	var out []int
	c.do(id, func() {
		for _, e := range c.peerAt(id).cyclon.View().Entries() {
			out = append(out, int(e.ID))
		}
	})
	return out
}

// Views snapshots every peer's partial view at once, indexed by peer
// id. While the cluster runs each snapshot goes through its peer's
// goroutine like View; after Stop the goroutines are gone (Stop waits
// for them) and the read is direct — which is what lets the scenario
// engine's view-hygiene invariant inspect views after Close.
func (c *Cluster) Views() [][]int {
	c.mu.Lock()
	running := c.started && !c.stopped
	c.mu.Unlock()
	peers := c.peerList()
	out := make([][]int, len(peers))
	for i, p := range peers {
		if running {
			out[i] = c.View(i)
			continue
		}
		ids := p.cyclon.View().IDs()
		v := make([]int, len(ids))
		for j, id := range ids {
			v[j] = int(id)
		}
		out[i] = v
	}
	return out
}

// ErrJoinAbandoned is JoinErr's verdict for a joiner that exhausted its
// announcement budget without ever building a view.
var ErrJoinAbandoned = errors.New("live: join handshake abandoned after bounded retries")

// JoinErr reports the join handshake's outcome for a peer: nil while
// the handshake is pending or succeeded, ErrJoinAbandoned once the
// peer has given up (Config.JoinAttempts announcements, capped
// exponential backoff between them, and still no view).
func (c *Cluster) JoinErr(id int) error {
	p := c.peerAt(id)
	if p == nil {
		return fmt.Errorf("live: no peer %d", id)
	}
	if p.joinFailed.Load() {
		return ErrJoinAbandoned
	}
	return nil
}

// --- Fault injection ---------------------------------------------------------
//
// These mirror the simulated network's fault surface (simnet.SetUp,
// Partition, Heal, SetLoss plus core's Leave/Rejoin and free-riding), so
// a scenario schedule can drive both runtimes identically. All are safe
// to call at any time from any goroutine.

// Crash takes a peer offline without notice: it stops gossiping, drops
// everything in its inbox, and other peers' messages to it are lost —
// the live analogue of core.Node.Leave.
func (c *Cluster) Crash(id int) bool {
	p := c.peerAt(id)
	if p == nil {
		return false
	}
	p.down.Store(true)
	return true
}

// Leave departs a peer gracefully: on its own goroutine it hands its
// freshest view entries to every view neighbour in KindLeave envelopes
// (real, ledger-charged infrastructure traffic), then goes silent
// exactly like a crashed peer. Compare Crash, the departure without
// notice. Returns false for invalid ids or a stopped cluster.
func (c *Cluster) Leave(id int) bool {
	return c.do(id, func() {
		p := c.peerAt(id)
		if p.down.Load() {
			return // already offline: nothing to announce
		}
		p.sendLeave()
		p.down.Store(true)
	})
}

// Rejoin brings a crashed peer back. Its buffer, dedup memory and
// partial view survive the outage, like a process that was suspended
// rather than wiped; stale view entries heal through shuffling.
func (c *Cluster) Rejoin(id int) bool {
	p := c.peerAt(id)
	if p == nil {
		return false
	}
	p.down.Store(false)
	return true
}

// Up reports whether the peer is currently up (not crashed).
func (c *Cluster) Up(id int) bool {
	p := c.peerAt(id)
	return p != nil && !p.down.Load()
}

// SetFreeRider makes a peer stop forwarding while still receiving and
// delivering — the classic gossip defector. Membership maintenance
// continues, so the free-rider stays reachable (and keeps benefiting).
func (c *Cluster) SetFreeRider(id int, on bool) bool {
	p := c.peerAt(id)
	if p == nil {
		return false
	}
	p.free.Store(on)
	return true
}

// Partition splits the cluster: peers in side keep talking to each other
// but lose connectivity with everyone else until Heal is called. Peers
// joining during a split land on the majority (zero) side.
func (c *Cluster) Partition(side []int) {
	peers := c.peerList()
	for _, p := range peers {
		p.group.Store(0)
	}
	for _, id := range side {
		if id >= 0 && id < len(peers) {
			peers[id].group.Store(1)
		}
	}
	c.faults.split.Store(true)
}

// Heal removes any partition.
func (c *Cluster) Heal() { c.faults.split.Store(false) }

// SetLoss sets the i.i.d. per-message drop probability (clamped to [0,1]).
func (c *Cluster) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	c.faults.loss.Store(math.Float64bits(p))
}

// SetShape swaps the shaping middleware's profile mid-run (delay,
// jitter, reorder, loss, bandwidth). Returns false when the cluster was
// built without Config.Shape — shaping cannot be bolted on after
// construction, because peers hold their transport endpoints.
func (c *Cluster) SetShape(p transport.Profile) bool {
	if c.shaped == nil {
		return false
	}
	c.shaped.SetProfile(p)
	return true
}

// SetOutage marks (on) or clears (off) a correlated regional outage
// over the given peer ids: boundary-crossing envelopes are eaten with
// probability Profile.OutageLoss (default 1) and counted in
// Traffic().ShaperDrops; traffic wholly inside the region still flows.
// on=false with nil members lifts every outage. Returns false without
// the shaping middleware.
func (c *Cluster) SetOutage(members []int, on bool) bool {
	if c.shaped == nil {
		return false
	}
	c.shaped.SetOutage(members, on)
	return true
}

// Rebind moves an up peer to a fresh transport address — the mobile
// peer primitive. On substrates that implement transport.Rebinder (UDP,
// shaped-UDP) the endpoint really moves, make-before-break; in-process
// substrates have nothing to rebind and only the protocol part runs.
// Either way the peer then re-announces itself through the ordinary
// join path (real, ledger-charged traffic) using a seed drawn from its
// current view, so the overlay re-learns the peer promptly at its new
// address. Runs on the peer's own goroutine; returns false for invalid
// ids or a stopped cluster.
func (c *Cluster) Rebind(id int) bool {
	return c.do(id, func() {
		p := c.peerAt(id)
		if p.down.Load() {
			return
		}
		if rb, ok := c.net.(transport.Rebinder); ok {
			_, _ = rb.Rebind(id) // in-process substrates: nothing to move
		}
		if ents := p.cyclon.View().Entries(); len(ents) > 0 {
			p.joinSeed = int(ents[p.rng.Intn(len(ents))].ID)
		}
		if p.joinSeed < 0 {
			return // an isolated founder has nobody to re-announce to
		}
		// Fresh handshake budget: the re-announcement is attempt #1, and
		// the ordinary backoff machinery covers a silent seed.
		p.joinAttempts, p.joinWait = 0, 0
		p.joinFailed.Store(false)
		p.sendJoin()
		p.joinAttempts++
	})
}

// Publish originates an event at the given peer.
func (c *Cluster) Publish(id int, topic string, attrs []pubsub.Attr, payload []byte) bool {
	return c.do(id, func() {
		p := c.peerAt(id)
		p.pubSeq++
		ev := &pubsub.Event{
			ID:      pubsub.EventID{Publisher: uint32(id), Seq: p.pubSeq},
			Topic:   topic,
			Attrs:   attrs,
			Payload: payload,
		}
		c.ledger.AddPublish(id, ev.WireSize())
		p.seen.Add(ev.ID)
		p.buffer.Insert(ev)
		p.deliverIfInterested(ev)
	})
}

// --- peer loop ---------------------------------------------------------------

// ingress is the transport delivery callback: a non-blocking inbox push
// with counted overflow. It runs on the sender's goroutine (chan
// transport) or the socket reader's (UDP); either way it must not
// block, and a full inbox is a counted drop — a saturated socket
// buffer whose loss the books still see.
func (p *peer) ingress(buf []byte) {
	select {
	case p.inbox <- buf:
		p.c.traffic.recv.Add(1)
	default:
		p.c.traffic.inboxDrops.Add(1)
	}
}

func (p *peer) loop() {
	// A joiner announces itself before its first round: the seed learns
	// the new address immediately and replies with bootstrap entries.
	// Routing through announce() makes this attempt #1 of the bounded,
	// backed-off handshake.
	if p.joinSeed >= 0 {
		p.announce()
	}
	// The command channel must be drained before Start too; tickers with
	// jitter desynchronise the rounds.
	jitter := time.Duration(p.rng.Int63n(int64(p.c.cfg.RoundPeriod)))
	timer := time.NewTimer(p.c.cfg.RoundPeriod + jitter)
	defer timer.Stop()
	for {
		select {
		case <-p.c.stop:
			return
		case cmd := <-p.cmds:
			cmd()
		case buf := <-p.inbox:
			p.receive(buf)
		case <-timer.C:
			p.round()
			timer.Reset(p.c.cfg.RoundPeriod)
		}
	}
}

//fair:hotpath
func (p *peer) round() {
	if p.down.Load() {
		return // crashed: no protocol activity at all
	}
	p.rounds++
	// Membership maintenance runs for free-riders too (they stay
	// reachable, like core's defectors), never for crashed peers.
	if p.rounds%p.c.cfg.ShuffleEvery == 0 {
		p.membershipRound() //fair:ignore hotpath shuffle offers are deliberate fresh copies (they travel in in-flight messages), paid once every ShuffleEvery rounds
	}
	// A free-rider receives and delivers but never forwards; its buffer
	// still ages so it does not hoard a backlog to replay on reform.
	if !p.free.Load() {
		p.gossip()
	}
	p.buffer.Tick()
	if p.rounds%p.c.cfg.ControlWindow == 0 {
		acct := p.c.ledger.Account(p.id)
		delta := fairness.Delta(acct, p.last)
		p.last = acct
		w := p.c.ledger.Weights()
		p.fanout, p.batch = p.ctrl.Update(adaptive.Sample{
			Benefit:      fairness.Benefit(delta, w),
			Contribution: fairness.Contribution(delta, w),
		})
	}
}

// membershipRound runs one Cyclon step: settle the previous shuffle's
// probe verdict, then age the view, cull the oldest entry as shuffle
// target, and send it our offer — which doubles as the failure
// detector's probe of that target. An isolated peer (a joiner whose
// handshake died, or a view decimated by churn) falls back to
// re-announcing itself to its join seed, under capped backoff.
func (p *peer) membershipRound() {
	p.resolveProbe()
	// Capture the current oldest before initiating: IncrementAges
	// preserves the age order (ties and all), so this is the entry
	// InitiateShuffle is about to cull, at one round younger.
	old, _ := p.cyclon.View().Oldest()
	target, offer, ok := p.cyclon.InitiateShuffle(p.rng)
	if !ok {
		p.announce()
		return
	}
	// A non-empty view means the peer is integrated; a later isolation
	// (churn eating the whole view) gets a fresh retry budget.
	p.joinAttempts, p.joinWait = 0, 0
	p.joinFailed.Store(false)
	p.probe = target
	p.probeEntry = membership.Entry{ID: target, Age: old.Age + 1}
	p.sendMembership(wire.KindShuffleOffer, int(target), offer)
}

// resolveProbe settles the verdict on the previous membership round's
// shuffle target. Silence since then is a strike; EvictStrikes
// consecutive strikes evicts and quarantines the address. Anything
// less restores the culled entry with its age frozen (MarkSuspect), so
// it stays the oldest, is re-targeted promptly, and third-party
// re-offers cannot launder the suspicion away.
func (p *peer) resolveProbe() {
	if p.probe == simnet.None {
		return
	}
	id := p.probe
	p.probe = simnet.None
	v := p.cyclon.View()
	if p.det.strike(id) {
		p.det.bury(id, p.rounds)
		// The shuffle already culled the entry; a third party may have
		// re-offered it mid-probe, so remove defensively.
		v.Remove(id)
		return
	}
	v.AddAged(p.probeEntry)
	v.MarkSuspect(id)
}

// noteAlive records direct contact from a peer: every piece of
// detector evidence against it is void, a pending probe of it is
// answered, and any view suspicion is cleared.
func (p *peer) noteAlive(from simnet.NodeID) {
	p.det.alive(from)
	if p.probe == from {
		p.probe = simnet.None
	}
	p.cyclon.View().ClearSuspect(from)
}

// announce re-sends the join announcement under capped exponential
// backoff with seeded jitter. After Config.JoinAttempts announcements
// with no usable view the peer gives up: the abandonment is surfaced
// through JoinErr and counted in Traffic().JoinGiveUps, instead of the
// old behaviour of re-announcing every membership round forever.
func (p *peer) announce() {
	if p.joinSeed < 0 || p.joinFailed.Load() {
		return // founders have no seed; a given-up joiner stays quiet
	}
	if p.joinWait > 0 {
		p.joinWait--
		return
	}
	if p.joinAttempts >= p.c.cfg.JoinAttempts {
		p.joinFailed.Store(true)
		p.c.traffic.joinGiveUps.Add(1)
		return
	}
	p.sendJoin()
	p.joinAttempts++
	backoff := p.c.cfg.JoinBackoffCap
	if s := p.joinAttempts - 1; s < 10 && 1<<s < backoff {
		backoff = 1 << s
	}
	p.joinWait = backoff + p.rng.Intn(backoff)
}

// gossip runs one round's push: SELECTEVENTS, SELECTPARTICIPANTS,
// encode once, send the shared immutable bytes to every partner.
//
//fair:hotpath
func (p *peer) gossip() {
	// The selection runs over peer-owned scratch: it dies at the encode
	// below, so unlike the envelope it never leaves this frame.
	events := p.buffer.SelectInto(p.rng, &p.sel, p.batch, p.c.cfg.Policy)
	if len(events) == 0 {
		return
	}
	targets := p.samplePeers(p.fanout)
	if len(targets) == 0 {
		return
	}
	// The envelope buffer must be fresh each round — receivers hold it
	// asynchronously — so it is the round path's one allocation.
	buf, err := wire.AppendEnvelope(make([]byte, 0, wire.EnvelopeSize(events)), uint32(p.id), events) //fair:ignore hotpath receivers hold the envelope asynchronously, so it cannot be pooled; TestLiveRoundPathAllocs pins the round at exactly this allocation
	if err != nil {
		// Unencodable events (a topic beyond the u16 framing, say)
		// cannot be gossiped; skip the fanout without charging anyone.
		return
	}
	for _, q := range targets {
		p.send(q, buf, fairness.ClassApp)
	}
}

// samplePeers draws up to k distinct partners from the peer's partial
// view — SELECTPARTICIPANTS(F) over the membership substrate, not a
// full roster. SampleInto runs over reused scratch, so steady-state
// rounds allocate nothing here.
func (p *peer) samplePeers(k int) []int {
	got := p.cyclon.View().SampleInto(p.rng, k, p.targets[:0])
	if got == nil {
		return nil
	}
	p.targets = got
	out := p.sample[:0]
	for _, q := range got {
		out = append(out, int(q))
	}
	p.sample = out
	return out
}

// sendJoin announces this peer to its join seed (real, charged
// infrastructure traffic — a joiner pays for its own introduction).
func (p *peer) sendJoin() {
	p.sendMembership(wire.KindJoin, p.joinSeed, nil)
}

// sendLeave notifies every view neighbour of this peer's departure,
// handing each up to ShuffleLen of the freshest view entries (excluding
// the neighbour's own address) as replacement contacts — the overlay
// loses an address but keeps its degree. Every notification is charged
// like any other membership traffic; sends to already-dead neighbours
// land in the counted drop buckets as usual.
func (p *peer) sendLeave() {
	ents := p.cyclon.View().Entries()
	sort.SliceStable(ents, func(i, j int) bool { return ents[i].Age < ents[j].Age })
	k := p.cyclon.ShuffleLen()
	hand := make([]membership.Entry, 0, k)
	for _, to := range ents {
		hand = hand[:0]
		for _, e := range ents {
			if len(hand) == k {
				break
			}
			if e.ID != to.ID {
				hand = append(hand, e)
			}
		}
		p.sendMembership(wire.KindLeave, int(to.ID), hand)
	}
}

// sendMembership encodes and sends one membership envelope. The buffer
// is fresh per send — the receiver owns it asynchronously — while the
// entry conversion runs over reused scratch.
func (p *peer) sendMembership(kind byte, to int, entries []membership.Entry) {
	p.entOut = p.entOut[:0]
	for _, e := range entries {
		age := e.Age
		if age > math.MaxUint16 {
			age = math.MaxUint16
		}
		if e.ID < 0 {
			continue
		}
		p.entOut = append(p.entOut, wire.ViewEntry{ID: uint32(e.ID), Age: uint16(age)})
	}
	buf, err := wire.AppendMembership(make([]byte, 0, wire.MembershipSize(len(p.entOut))), kind, uint32(p.id), p.entOut)
	if err != nil {
		return
	}
	p.send(to, buf, fairness.ClassInfra)
}

// send transmits an encoded envelope. The sender pays for the attempt
// whether or not the network delivers it — the same accounting simnet
// applies to lossy links. The charge is the encoded size: ledger bytes
// and wire bytes are one number, for gossip and membership traffic
// alike.
func (p *peer) send(to int, buf []byte, class fairness.Class) {
	p.c.ledger.AddSend(p.id, class, len(buf))
	p.c.traffic.sent.Add(1)
	if q := p.c.peerAt(to); q != nil && p.c.faults.dropLink(p, q, p.rng) {
		p.c.traffic.faultDrops.Add(1)
		return
	}
	// An address outside the table (a stale or hostile view entry) falls
	// through to the transport, which refuses it — a counted drop.
	if err := p.tr.Send(to, buf); err != nil {
		p.c.traffic.transportDrops.Add(1)
	}
}

func (p *peer) receive(buf []byte) {
	if p.down.Load() {
		return // crashed: anything already queued in the inbox is lost
	}
	if err := wire.DecodeEnvelope(buf, &p.env); err != nil {
		p.c.traffic.malformed.Add(1)
		return
	}
	from := int(p.env.Sender)
	// The ledger is grown before a joiner's endpoint can emit traffic,
	// so its length bounds every well-formed sender id.
	if from < 0 || from >= p.c.ledger.Len() || from == p.id {
		p.c.traffic.malformed.Add(1)
		return
	}
	// Any valid envelope is proof of life for its sender — the failure
	// detector never holds evidence against a peer it can hear.
	p.noteAlive(simnet.NodeID(from))
	switch p.env.Kind {
	case wire.KindEvents:
		p.receiveEvents(from)
	case wire.KindShuffleOffer:
		reply := p.cyclon.HandleShuffle(p.rng, simnet.NodeID(from), p.entriesIn())
		p.sendMembership(wire.KindShuffleReply, from, reply)
	case wire.KindShuffleReply:
		p.cyclon.HandleReply(simnet.NodeID(from), p.entriesIn())
	case wire.KindJoin:
		p.handleJoin(from)
	case wire.KindLeave:
		p.handleLeave(from)
	}
}

func (p *peer) receiveEvents(from int) {
	novel, dup := 0, 0
	for _, ev := range p.env.Events {
		if !p.seen.Add(ev.ID) {
			dup += ev.WireSize()
			continue
		}
		novel += ev.WireSize()
		p.buffer.Insert(ev)
		p.deliverIfInterested(ev)
	}
	p.c.ledger.AddAudit(from, novel, dup)
}

// entriesIn converts the decoded envelope's entries into membership
// entries over reused scratch, refusing quarantined addresses — the
// half of eviction that keeps third-party gossip from recirculating a
// dead peer back into the view it was just probed out of.
func (p *peer) entriesIn() []membership.Entry {
	p.entIn = p.entIn[:0]
	for _, e := range p.env.Entries {
		id := simnet.NodeID(e.ID)
		if p.det.buried(id, p.rounds) {
			continue
		}
		p.entIn = append(p.entIn, membership.Entry{ID: id, Age: int(e.Age)})
	}
	return p.entIn
}

// handleLeave processes a graceful departure: forget the leaver, refuse
// its address from future offers, and adopt the replacement contacts it
// handed over (already filtered through the quarantine — including the
// fresh verdict against the leaver itself).
func (p *peer) handleLeave(from int) {
	id := simnet.NodeID(from)
	v := p.cyclon.View()
	v.Remove(id)
	p.det.bury(id, p.rounds)
	if p.probe == id {
		p.probe = simnet.None
	}
	for _, e := range p.entriesIn() {
		v.AddAged(e)
	}
}

// handleJoin admits a joining peer: merge whatever view it announced,
// remember its address, and bootstrap it with a sample of our own view
// sent back as a shuffle reply (the joiner merges it conservatively,
// learning our address too).
func (p *peer) handleJoin(from int) {
	v := p.cyclon.View()
	for _, e := range p.entriesIn() {
		v.AddAged(e)
	}
	v.Add(simnet.NodeID(from))
	ents := v.Entries()
	p.rng.Shuffle(len(ents), func(i, j int) { ents[i], ents[j] = ents[j], ents[i] })
	k := p.cyclon.ShuffleLen()
	if k > len(ents) {
		k = len(ents)
	}
	boot := ents[:0]
	for _, e := range ents {
		if len(boot) == k {
			break
		}
		if int(e.ID) == from {
			continue // the joiner does not need its own address back
		}
		boot = append(boot, e)
	}
	p.sendMembership(wire.KindShuffleReply, from, boot)
}

func (p *peer) deliverIfInterested(ev *pubsub.Event) {
	if !p.in.Match(ev) {
		return
	}
	p.c.ledger.AddDelivery(p.id)
	if p.deliver != nil {
		p.deliver(ev)
	}
}
