// Package live is the real-concurrency runtime: one goroutine per peer,
// buffered channels as links, and wall-clock tickers for gossip rounds.
// It runs the same content-mode FairGossip protocol as internal/core but
// against Go's scheduler instead of the deterministic simulator — the
// form a deployed system (and the runnable examples) would use.
//
// Concurrency model: each peer's protocol state is owned by its single
// goroutine. External calls (Subscribe, Publish) are funneled into the
// peer loop through a command channel and executed there, so no protocol
// state needs locks. The shared fairness.Ledger is internally
// synchronised. A peer whose inbox overflows drops messages, which is
// exactly how a saturated UDP socket behaves.
package live

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fairgossip/internal/adaptive"
	"fairgossip/internal/fairness"
	"fairgossip/internal/gossip"
	"fairgossip/internal/pubsub"
)

// Config parameterises a live cluster.
type Config struct {
	// N is the number of peers (minimum 2).
	N int
	// Fanout and Batch are the initial (or static) levers. Defaults 4/8.
	Fanout int
	Batch  int
	// RoundPeriod is the gossip period (default 20ms — examples want to
	// finish quickly; a WAN deployment would use 1s+).
	RoundPeriod time.Duration
	// TargetRatio > 0 enables the AIMD fairness controller with that
	// contribution-per-benefit target; 0 keeps static levers.
	TargetRatio float64
	// ControlWindow is rounds between controller updates (default 5).
	ControlWindow int
	// InboxDepth is the per-peer channel buffer (default 1024).
	InboxDepth int
	// BufferMaxAge is how many rounds an event stays forwardable
	// (default 8; raise it for bursty publication loads).
	BufferMaxAge int
	// Policy is the SELECTEVENTS policy (default random; least-sent
	// guarantees fresh events win send slots under backlog).
	Policy gossip.Policy
	// Seed drives per-peer randomness (peer i uses Seed^i).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.N < 2 {
		c.N = 2
	}
	if c.Fanout <= 0 {
		c.Fanout = 4
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.RoundPeriod <= 0 {
		c.RoundPeriod = 20 * time.Millisecond
	}
	if c.ControlWindow <= 0 {
		c.ControlWindow = 5
	}
	if c.InboxDepth <= 0 {
		c.InboxDepth = 1024
	}
	if c.BufferMaxAge <= 0 {
		c.BufferMaxAge = 8
	}
	if c.Policy == 0 {
		c.Policy = gossip.PolicyRandom
	}
	return c
}

type envelope struct {
	from   int
	events []*pubsub.Event
	size   int
}

// faults is the cluster's shared fault-injection state. Scenario drivers
// flip it from outside the peer goroutines, so every field is atomic:
// peers consult it on their own goroutines without locks. The zero value
// injects nothing, and the hot path pays one relaxed load per send.
type faults struct {
	down  []atomic.Bool  // crashed peers: no rounds, no receives, links dropped
	free  []atomic.Bool  // free-riders: receive and deliver but never forward
	group []atomic.Int32 // partition group; cross-group links drop while split
	split atomic.Bool
	loss  atomic.Uint64 // i.i.d. link-loss probability, stored as float64 bits
}

func newFaults(n int) *faults {
	return &faults{
		down:  make([]atomic.Bool, n),
		free:  make([]atomic.Bool, n),
		group: make([]atomic.Int32, n),
	}
}

// dropLink reports whether a message from -> to should be lost to an
// injected fault. rng is the sender's own stream (loss draws stay
// per-goroutine).
func (f *faults) dropLink(from, to int, rng *rand.Rand) bool {
	if f.down[to].Load() {
		return true
	}
	if f.split.Load() && f.group[from].Load() != f.group[to].Load() {
		return true
	}
	if p := math.Float64frombits(f.loss.Load()); p > 0 && rng.Float64() < p {
		return true
	}
	return false
}

// Cluster is a set of live peers. Create with NewCluster, then Start;
// Stop blocks until every peer goroutine has exited.
type Cluster struct {
	cfg    Config
	ledger *fairness.Ledger
	peers  []*peer
	faults *faults

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
	stopped bool
	mu      sync.Mutex
}

type peer struct {
	id      int
	c       *Cluster
	rng     *rand.Rand
	inbox   chan envelope
	cmds    chan func()
	buffer  *gossip.Buffer
	seen    *gossip.SeenSet
	in      pubsub.Interest
	ctrl    adaptive.Controller
	fanout  int
	batch   int
	rounds  int
	last    fairness.Account
	pubSeq  uint32
	deliver func(*pubsub.Event)
}

// NewCluster builds a stopped cluster.
func NewCluster(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:    cfg,
		ledger: fairness.NewLedger(cfg.N, fairness.DefaultWeights()),
		faults: newFaults(cfg.N),
		stop:   make(chan struct{}),
	}
	for i := 0; i < cfg.N; i++ {
		var ctrl adaptive.Controller
		if cfg.TargetRatio > 0 {
			ctrl = adaptive.NewAIMD(adaptive.Config{
				TargetRatio: cfg.TargetRatio,
				Limits:      adaptive.DefaultLimits(cfg.N),
			}, adaptive.LeverBoth, cfg.Fanout, cfg.Batch)
		} else {
			ctrl = adaptive.Static{F: cfg.Fanout, N: cfg.Batch}
		}
		p := &peer{
			id:     i,
			c:      c,
			rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(i*2654435761+1))),
			inbox:  make(chan envelope, cfg.InboxDepth),
			cmds:   make(chan func(), 64),
			buffer: gossip.NewBuffer(256, cfg.BufferMaxAge),
			seen:   gossip.NewSeenSet(8192),
			ctrl:   ctrl,
		}
		p.fanout, p.batch = ctrl.Fanout(), ctrl.Batch()
		c.peers = append(c.peers, p)
	}
	return c
}

// Ledger exposes the shared fairness ledger (safe for concurrent reads).
func (c *Cluster) Ledger() *fairness.Ledger { return c.ledger }

// Report returns the cluster-wide fairness report.
func (c *Cluster) Report() fairness.Report { return c.ledger.Report() }

// Start launches every peer goroutine. Idempotent.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	for _, p := range c.peers {
		p := p
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			p.loop()
		}()
	}
}

// Stop signals every peer to exit and waits for them. Idempotent.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if !c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
}

// do runs fn with exclusive access to peer id's state and waits for it to
// complete: inline before Start (setup is single-threaded), through the
// peer's command channel afterwards. It returns false if the cluster is
// stopped or the id is invalid.
func (c *Cluster) do(id int, fn func()) bool {
	if id < 0 || id >= len(c.peers) {
		return false
	}
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if !started {
		fn()
		return true
	}
	done := make(chan struct{})
	select {
	case c.peers[id].cmds <- func() { fn(); close(done) }:
	case <-c.stop:
		return false
	}
	select {
	case <-done:
		return true
	case <-c.stop:
		return false
	}
}

// Subscribe registers a filter on a peer and returns its subscription ID.
func (c *Cluster) Subscribe(id int, f pubsub.Filter) (pubsub.SubID, bool) {
	var sub pubsub.SubID
	ok := c.do(id, func() {
		p := c.peers[id]
		sub = p.in.Subscribe(f)
		c.ledger.SetFilters(id, p.in.Count())
	})
	return sub, ok
}

// Unsubscribe removes a subscription from a peer.
func (c *Cluster) Unsubscribe(id int, sub pubsub.SubID) bool {
	removed := false
	ok := c.do(id, func() {
		p := c.peers[id]
		removed = p.in.Unsubscribe(sub)
		c.ledger.SetFilters(id, p.in.Count())
	})
	return ok && removed
}

// OnDeliver installs a delivery observer on a peer (call before or after
// Start; it runs on the peer's goroutine).
func (c *Cluster) OnDeliver(id int, fn func(*pubsub.Event)) bool {
	return c.do(id, func() { c.peers[id].deliver = fn })
}

// Levers reports a peer's current fanout and batch levers (synchronised
// through the peer's own goroutine).
func (c *Cluster) Levers(id int) (fanout, batch int, ok bool) {
	ok = c.do(id, func() {
		fanout, batch = c.peers[id].fanout, c.peers[id].batch
	})
	return fanout, batch, ok
}

// --- Fault injection ---------------------------------------------------------
//
// These mirror the simulated network's fault surface (simnet.SetUp,
// Partition, Heal, SetLoss plus core's Leave/Rejoin and free-riding), so
// a scenario schedule can drive both runtimes identically. All are safe
// to call at any time from any goroutine.

// Crash takes a peer offline without notice: it stops gossiping, drops
// everything in its inbox, and other peers' messages to it are lost —
// the live analogue of core.Node.Leave.
func (c *Cluster) Crash(id int) bool {
	if id < 0 || id >= len(c.peers) {
		return false
	}
	c.faults.down[id].Store(true)
	return true
}

// Rejoin brings a crashed peer back. Its buffer and dedup memory survive
// the outage, like a process that was suspended rather than wiped.
func (c *Cluster) Rejoin(id int) bool {
	if id < 0 || id >= len(c.peers) {
		return false
	}
	c.faults.down[id].Store(false)
	return true
}

// Up reports whether the peer is currently up (not crashed).
func (c *Cluster) Up(id int) bool {
	return id >= 0 && id < len(c.peers) && !c.faults.down[id].Load()
}

// SetFreeRider makes a peer stop forwarding while still receiving and
// delivering — the classic gossip defector.
func (c *Cluster) SetFreeRider(id int, on bool) bool {
	if id < 0 || id >= len(c.peers) {
		return false
	}
	c.faults.free[id].Store(on)
	return true
}

// Partition splits the cluster: peers in side keep talking to each other
// but lose connectivity with everyone else until Heal is called.
func (c *Cluster) Partition(side []int) {
	for i := range c.faults.group {
		c.faults.group[i].Store(0)
	}
	for _, id := range side {
		if id >= 0 && id < len(c.peers) {
			c.faults.group[id].Store(1)
		}
	}
	c.faults.split.Store(true)
}

// Heal removes any partition.
func (c *Cluster) Heal() { c.faults.split.Store(false) }

// SetLoss sets the i.i.d. per-message drop probability (clamped to [0,1]).
func (c *Cluster) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	c.faults.loss.Store(math.Float64bits(p))
}

// Publish originates an event at the given peer.
func (c *Cluster) Publish(id int, topic string, attrs []pubsub.Attr, payload []byte) bool {
	return c.do(id, func() {
		p := c.peers[id]
		p.pubSeq++
		ev := &pubsub.Event{
			ID:      pubsub.EventID{Publisher: uint32(id), Seq: p.pubSeq},
			Topic:   topic,
			Attrs:   attrs,
			Payload: payload,
		}
		c.ledger.AddPublish(id, ev.WireSize())
		p.seen.Add(ev.ID)
		p.buffer.Insert(ev)
		p.deliverIfInterested(ev)
	})
}

// --- peer loop ---------------------------------------------------------------

func (p *peer) loop() {
	// The command channel must be drained before Start too; tickers with
	// jitter desynchronise the rounds.
	jitter := time.Duration(p.rng.Int63n(int64(p.c.cfg.RoundPeriod)))
	timer := time.NewTimer(p.c.cfg.RoundPeriod + jitter)
	defer timer.Stop()
	for {
		select {
		case <-p.c.stop:
			return
		case cmd := <-p.cmds:
			cmd()
		case env := <-p.inbox:
			p.receive(env)
		case <-timer.C:
			p.round()
			timer.Reset(p.c.cfg.RoundPeriod)
		}
	}
}

func (p *peer) round() {
	if p.c.faults.down[p.id].Load() {
		return // crashed: no protocol activity at all
	}
	p.rounds++
	// A free-rider receives and delivers but never forwards; its buffer
	// still ages so it does not hoard a backlog to replay on reform.
	if !p.c.faults.free[p.id].Load() {
		events := p.buffer.Select(p.rng, p.batch, p.c.cfg.Policy)
		if len(events) > 0 {
			size := gossip.MsgWireSize(events)
			for _, q := range p.samplePeers(p.fanout) {
				p.send(q, events, size)
			}
		}
	}
	p.buffer.Tick()
	if p.rounds%p.c.cfg.ControlWindow == 0 {
		acct := p.c.ledger.Account(p.id)
		delta := fairness.Delta(acct, p.last)
		p.last = acct
		w := p.c.ledger.Weights()
		p.fanout, p.batch = p.ctrl.Update(adaptive.Sample{
			Benefit:      fairness.Benefit(delta, w),
			Contribution: fairness.Contribution(delta, w),
		})
	}
}

func (p *peer) samplePeers(k int) []int {
	n := len(p.c.peers)
	if k > n-1 {
		k = n - 1
	}
	out := make([]int, 0, k)
	seen := map[int]struct{}{p.id: {}}
	for len(out) < k {
		q := p.rng.Intn(n)
		if _, dup := seen[q]; dup {
			continue
		}
		seen[q] = struct{}{}
		out = append(out, q)
	}
	return out
}

func (p *peer) send(to int, events []*pubsub.Event, size int) {
	// The sender pays for the attempt whether or not the network delivers
	// it — the same accounting simnet applies to lossy links.
	p.c.ledger.AddSend(p.id, fairness.ClassApp, size)
	if p.c.faults.dropLink(p.id, to, p.rng) {
		return
	}
	select {
	case p.c.peers[to].inbox <- envelope{from: p.id, events: events, size: size}:
	default:
		// Inbox full: drop, like a saturated datagram socket.
	}
}

func (p *peer) receive(env envelope) {
	if p.c.faults.down[p.id].Load() {
		return // crashed: anything already queued in the inbox is lost
	}
	novel, dup := 0, 0
	for _, ev := range env.events {
		if !p.seen.Add(ev.ID) {
			dup += ev.WireSize()
			continue
		}
		novel += ev.WireSize()
		p.buffer.Insert(ev)
		p.deliverIfInterested(ev)
	}
	p.c.ledger.AddAudit(env.from, novel, dup)
}

func (p *peer) deliverIfInterested(ev *pubsub.Event) {
	if !p.in.Match(ev) {
		return
	}
	p.c.ledger.AddDelivery(p.id)
	if p.deliver != nil {
		p.deliver(ev)
	}
}
