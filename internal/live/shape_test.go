package live

import (
	"testing"
	"time"

	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/transport"
)

// TestShapedLedgerBytesExact is the satellite property test: under
// delay + jitter + reorder (no loss, no cap — nothing legitimately
// eaten), the bytes the ledger charged each peer equal the bytes the
// transport actually observed from that peer, exactly — deferred
// delivery may hold envelopes but never loses, duplicates, or resizes
// one. The counting layer sits between the shaper and the substrate, so
// it sees exactly what survived shaping; Stop flushes the shaper's
// queue before the comparison.
func TestShapedLedgerBytesExact(t *testing.T) {
	counter := &countingNet{scribble: true, bytes: make(map[int]uint64)}
	c := mustCluster(t, Config{
		N:           12,
		Fanout:      4,
		RoundPeriod: 3 * time.Millisecond,
		Seed:        21,
		Transport: func(n int) (transport.Net, error) {
			inner, err := transport.NewChanNet(n)
			if err != nil {
				return nil, err
			}
			counter.inner = inner
			return counter, nil
		},
		Shape: &transport.Profile{
			Delay:   500 * time.Microsecond,
			Jitter:  1500 * time.Microsecond,
			Reorder: 0.2,
		},
	})
	for i := 0; i < 12; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()
	for k := 0; k < 20; k++ {
		c.Publish(k%12, "t", nil, make([]byte, 64))
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	c.Stop() // flushes the shaper, quiesces the substrate

	tr := c.Traffic()
	if tr.ShaperDrops != 0 {
		t.Fatalf("profile without loss/cap dropped %d envelopes", tr.ShaperDrops)
	}
	if tr.TransportDrops != 0 {
		t.Fatalf("substrate refused %d sends", tr.TransportDrops)
	}
	counter.mu.Lock()
	defer counter.mu.Unlock()
	for id := 0; id < c.N(); id++ {
		a := c.Ledger().Account(id)
		charged := a.BytesSent[fairness.ClassApp] + a.BytesSent[fairness.ClassInfra]
		if observedBytes := counter.bytes[id]; charged != observedBytes {
			t.Errorf("peer %d: ledger charged %d bytes, transport observed %d", id, charged, observedBytes)
		}
	}
	// Scribble audit: every envelope hashes today exactly as it did the
	// moment it crossed the substrate — nobody (shaper included) wrote
	// to a buffer after handing it over. Run under -race this also makes
	// any concurrent access a hard failure.
	for i, o := range counter.seen {
		if hashOf(o.buf) != o.hash {
			t.Fatalf("envelope %d mutated after delivery", i)
		}
	}
}

// TestShapedDropCompositionExact is the count-once audit: with shaper
// loss, scenario fault loss, crashed destinations AND a regional outage
// all active at once, conservation stays exact — a message dropped by
// one layer never reaches the next, so no loss is counted twice and
// none vanishes.
func TestShapedDropCompositionExact(t *testing.T) {
	c := mustCluster(t, Config{
		N:           16,
		Fanout:      5,
		RoundPeriod: 3 * time.Millisecond,
		Seed:        22,
		Shape:       &transport.Profile{Loss: 0.25},
	})
	for i := 0; i < 16; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.SetLoss(0.25) // fault-layer loss stacked on shaper loss
	c.Start()
	c.Crash(7) // crashed destination: fault layer eats it first
	if !c.SetOutage([]int{2, 3}, true) {
		t.Fatal("SetOutage refused with the shaper installed")
	}
	for k := 0; k < 30; k++ {
		c.Publish(k%5, "t", nil, make([]byte, 48))
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(80 * time.Millisecond)
	c.Stop()

	tr := c.Traffic()
	if tr.Sent != tr.Recv+tr.Dropped {
		t.Fatalf("conservation broke under composed loss: sent %d != recv %d + dropped %d (leak %d)",
			tr.Sent, tr.Recv, tr.Dropped, int64(tr.Sent)-int64(tr.Recv)-int64(tr.Dropped))
	}
	if tr.FaultDrops == 0 {
		t.Fatal("fault layer (loss + crashed peer) dropped nothing")
	}
	if tr.ShaperDrops == 0 {
		t.Fatal("shaper layer (loss + outage) dropped nothing")
	}
}

// TestSetShapeRequiresMiddleware: shaping cannot be bolted onto a bare
// cluster; with the middleware installed, profile swaps take effect.
func TestSetShapeRequiresMiddleware(t *testing.T) {
	bare := mustCluster(t, Config{N: 2, Seed: 23})
	if bare.SetShape(transport.Profile{Loss: 1}) {
		t.Fatal("SetShape succeeded without Config.Shape")
	}
	if bare.SetOutage([]int{0}, true) {
		t.Fatal("SetOutage succeeded without Config.Shape")
	}
	bare.Stop()

	c := mustCluster(t, Config{N: 4, RoundPeriod: 3 * time.Millisecond, Seed: 24, Shape: &transport.Profile{}})
	for i := 0; i < 4; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()
	defer c.Stop()
	if !c.SetShape(transport.Profile{Loss: 1}) {
		t.Fatal("SetShape refused with the middleware installed")
	}
	c.Publish(0, "t", nil, nil)
	if !eventually(t, 5*time.Second, func() bool { return c.Traffic().ShaperDrops > 0 }) {
		t.Fatal("total shaper loss never dropped anything")
	}
}

// TestRebindReannounces: a rebind keeps the peer up, moves its address
// on a rebindable substrate, re-announces through the join path, and
// the cluster keeps delivering to it — with the books still balanced
// after Stop.
func TestRebindReannounces(t *testing.T) {
	c := mustCluster(t, Config{
		N:           8,
		Fanout:      4,
		RoundPeriod: 3 * time.Millisecond,
		Seed:        25,
		Transport:   transport.UDP(),
		Shape:       &transport.Profile{Delay: 300 * time.Microsecond, Jitter: 300 * time.Microsecond},
	})
	for i := 0; i < 8; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()
	before := c.Addr(5)
	if !c.Rebind(5) {
		t.Fatal("rebind refused")
	}
	after := c.Addr(5)
	if before == after {
		t.Fatalf("address did not move: %s", after)
	}
	base := c.Ledger().Account(5).Delivered
	c.Publish(0, "t", nil, []byte("post-move"))
	if !eventually(t, 5*time.Second, func() bool { return c.Ledger().Account(5).Delivered > base }) {
		t.Fatal("moved peer stopped receiving")
	}
	c.Stop()
	tr := c.Traffic()
	if tr.Sent != tr.Recv+tr.Dropped {
		t.Fatalf("conservation broke across a rebind: sent %d != recv %d + dropped %d",
			tr.Sent, tr.Recv, tr.Dropped)
	}
	if c.Rebind(5) {
		t.Fatal("rebind succeeded on a stopped cluster")
	}
}
