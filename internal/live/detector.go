package live

import "fairgossip/internal/simnet"

// detector is a peer's timeout-based failure detector. It owns no
// timers and sends no probe messages of its own: the probes ARE the
// ordinary Cyclon shuffle offers the peer already sends (and already
// pays for as ClassInfra traffic), so enabling detection changes not
// one byte of the wire protocol or the ledger. Each membership round
// the peer checks whether its previous shuffle target ever answered —
// with anything, not just the reply; a failure detector wants proof of
// life, not protocol compliance. Unanswered probes accumulate strikes;
// evictAfter consecutive strikes evicts the address from the view and
// quarantines it so third-party gossip cannot resurrect it, which is
// what turns "the entry eventually ages out" into "no live peer's view
// contains a dead address within a bounded number of rounds".
//
// All state is owned by the peer goroutine; no synchronisation.
type detector struct {
	evictAfter int // consecutive unanswered probes before eviction (K)
	quarantine int // rounds an evicted address stays refused

	// strikes counts consecutive unanswered probes per address. It
	// deliberately lives outside the view: the probed entry leaves the
	// view during the shuffle, and evidence must survive the entry
	// being dropped and re-learned in between.
	strikes map[simnet.NodeID]int
	// dead maps quarantined addresses to the round they were evicted.
	dead map[simnet.NodeID]int
}

func newDetector(evictAfter, quarantine int) detector {
	return detector{
		evictAfter: evictAfter,
		quarantine: quarantine,
		strikes:    make(map[simnet.NodeID]int),
		dead:       make(map[simnet.NodeID]int),
	}
}

// alive records direct contact from id: all evidence against it is
// void, including a standing quarantine (a rejoined peer revives the
// moment it speaks for itself).
func (d *detector) alive(id simnet.NodeID) {
	if len(d.strikes) > 0 {
		delete(d.strikes, id)
	}
	if len(d.dead) > 0 {
		delete(d.dead, id)
	}
}

// strike records one unanswered probe against id and reports whether
// the address has now earned eviction.
func (d *detector) strike(id simnet.NodeID) bool {
	n := d.strikes[id] + 1
	if n >= d.evictAfter {
		delete(d.strikes, id)
		return true
	}
	d.strikes[id] = n
	return false
}

// bury quarantines id as of the given round.
func (d *detector) bury(id simnet.NodeID, round int) {
	d.dead[id] = round
}

// buried reports whether id is currently quarantined, lazily expiring
// stale verdicts (a quarantine is evidence, not a death certificate;
// after enough rounds the address gets the benefit of the doubt again).
func (d *detector) buried(id simnet.NodeID, round int) bool {
	at, ok := d.dead[id]
	if !ok {
		return false
	}
	if round-at > d.quarantine {
		delete(d.dead, id)
		return false
	}
	return true
}
