//go:build !race

package live

// raceDeadlineScale is 1 on uninstrumented runs; see deadline_race.go.
const raceDeadlineScale = 1
