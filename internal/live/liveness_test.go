package live

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairgossip/internal/pubsub"
	"fairgossip/internal/transport"
)

// viewsClean reports whether no up peer's view still holds any id in
// gone.
func viewsClean(c *Cluster, gone map[int]bool) bool {
	for i := 0; i < c.N(); i++ {
		if gone[i] || !c.Up(i) {
			continue
		}
		for _, q := range c.View(i) {
			if gone[q] {
				return false
			}
		}
	}
	return true
}

// TestLiveLeaveScrubsViews: a graceful leaver notifies its view
// neighbours with KindLeave envelopes, so the leaver's address is
// scrubbed from every survivor's view without waiting for probe
// timeouts — and the hand-off entries keep the survivors' degree up.
func TestLiveLeaveScrubsViews(t *testing.T) {
	c := mustCluster(t, Config{
		N: 10, Fanout: 3,
		RoundPeriod:  3 * time.Millisecond,
		ShuffleEvery: 1,
		Seed:         51,
	})
	c.Start()
	defer c.Stop()

	// Let the overlay mix before anyone departs.
	time.Sleep(30 * time.Millisecond)
	if !c.Leave(3) {
		t.Fatal("Leave(3) refused")
	}
	if c.Up(3) {
		t.Fatal("leaver still up")
	}
	gone := map[int]bool{3: true}
	if !eventually(t, 10*time.Second, func() bool { return viewsClean(c, gone) }) {
		t.Fatalf("a survivor still holds the leaver's address; views: %v", c.Views())
	}
	// Survivors keep a usable view after the hand-off.
	for i := 0; i < 10; i++ {
		if i != 3 && len(c.View(i)) == 0 {
			t.Errorf("peer %d left with an empty view", i)
		}
	}
}

// TestLiveDetectorEvictsCrashed: a peer that crashes WITHOUT notice is
// detected by its silence alone — unanswered shuffle offers accumulate
// strikes until every live peer evicts and quarantines the address.
// The detector rides ordinary Cyclon traffic: no probe messages exist
// to check for.
func TestLiveDetectorEvictsCrashed(t *testing.T) {
	c := mustCluster(t, Config{
		N: 8, Fanout: 3,
		RoundPeriod:      3 * time.Millisecond,
		ShuffleEvery:     1,
		EvictStrikes:     2,
		QuarantineRounds: 10_000, // no benefit of the doubt inside this test
		Seed:             52,
	})
	c.Start()

	time.Sleep(30 * time.Millisecond)
	c.Crash(0)
	gone := map[int]bool{0: true}
	if !eventually(t, 20*time.Second, func() bool { return viewsClean(c, gone) }) {
		t.Fatalf("crashed peer still in a live view; views: %v", c.Views())
	}
	c.Stop()
	// The post-Stop snapshot (the scenario engine's authoritative read)
	// agrees: the address stayed out.
	for i, v := range c.Views() {
		if i == 0 {
			continue
		}
		for _, q := range v {
			if q == 0 {
				t.Fatalf("peer %d resurrected the dead address after Stop", i)
			}
		}
	}
}

// TestLiveJoinGiveUpBounded: a joiner whose seed (and whole cluster) is
// dead must not announce itself forever. It retries under capped
// exponential backoff, then gives up: JoinErr reports ErrJoinAbandoned
// and the abandonment is counted in Traffic().JoinGiveUps — visible,
// not part of the Dropped books (nothing was sent for the skipped
// announcements).
func TestLiveJoinGiveUpBounded(t *testing.T) {
	c := mustCluster(t, Config{
		N: 2, Fanout: 2,
		RoundPeriod:    2 * time.Millisecond,
		ShuffleEvery:   1,
		EvictStrikes:   2,
		JoinAttempts:   3,
		JoinBackoffCap: 2,
		Seed:           53,
	})
	c.Start()
	defer c.Stop()
	c.Crash(0)
	c.Crash(1)

	id, err := c.Join(0)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := c.JoinErr(id); err != nil {
		t.Fatalf("fresh joiner already reports %v", err)
	}
	if !eventually(t, 20*time.Second, func() bool { return c.JoinErr(id) != nil }) {
		t.Fatal("joiner never gave up against a dead cluster")
	}
	if err := c.JoinErr(id); !errors.Is(err, ErrJoinAbandoned) {
		t.Fatalf("JoinErr = %v, want ErrJoinAbandoned", err)
	}
	if got := c.Traffic().JoinGiveUps; got == 0 {
		t.Fatal("give-up not counted in Traffic().JoinGiveUps")
	}
}

// TestLiveCrashDuringLeaveRace: Leave racing Crash on the same peers,
// under publish load, on both transports. Whatever interleaving wins,
// the cluster must shut down without leaked goroutines and with the
// traffic books balanced: sent == recv + dropped (a KindLeave envelope
// to an already-dead neighbour is a counted drop, not a leak). Run
// under -race in CI.
func TestLiveCrashDuringLeaveRace(t *testing.T) {
	factories := map[string]transport.Factory{
		"chan": nil, // default in-process channels
		"udp":  transport.UDP(),
	}
	for name, factory := range factories {
		factory := factory
		t.Run(name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			c := mustCluster(t, Config{
				N: 16, Fanout: 4,
				RoundPeriod:  2 * time.Millisecond,
				ShuffleEvery: 1,
				Seed:         54,
				Transport:    factory,
			})
			for i := 0; i < 16; i++ {
				c.Subscribe(i, pubsub.MatchAll())
			}
			c.Start()

			var wg sync.WaitGroup
			var stopFlood atomic.Bool
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; !stopFlood.Load(); k++ {
					c.Publish(k%4, "t", nil, []byte("load"))
					time.Sleep(time.Millisecond)
				}
			}()
			time.Sleep(20 * time.Millisecond)
			// For each victim, Leave and Crash race from two goroutines:
			// Leave may find the peer already down (a no-op), or the
			// crash may silence the peer mid-hand-off.
			for id := 4; id < 12; id++ {
				id := id
				wg.Add(2)
				go func() { defer wg.Done(); c.Leave(id) }()
				go func() { defer wg.Done(); c.Crash(id) }()
			}
			time.Sleep(30 * time.Millisecond)
			stopFlood.Store(true)
			wg.Wait()
			c.Stop()

			waitGoroutinesSettle(t, base, 5*time.Second)
			tr := c.Traffic()
			if tr.Sent == 0 {
				t.Fatal("no traffic flowed")
			}
			if tr.Sent != tr.Recv+tr.Dropped {
				t.Fatalf("traffic leak: sent %d != recv %d + dropped %d",
					tr.Sent, tr.Recv, tr.Dropped)
			}
			for id := 4; id < 12; id++ {
				if c.Up(id) {
					t.Errorf("victim %d still up", id)
				}
			}
		})
	}
}
