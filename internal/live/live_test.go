package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairgossip/internal/pubsub"
)

func mustCluster(t testing.TB, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestLiveDisseminationReachesEveryone(t *testing.T) {
	c := mustCluster(t, Config{N: 24, Fanout: 5, RoundPeriod: 5 * time.Millisecond, Seed: 1})
	var delivered atomic.Int64
	for i := 0; i < 24; i++ {
		if _, ok := c.Subscribe(i, pubsub.MatchAll()); !ok {
			t.Fatal("subscribe failed")
		}
		if !c.OnDeliver(i, func(*pubsub.Event) { delivered.Add(1) }) {
			t.Fatal("OnDeliver failed")
		}
	}
	c.Start()
	defer c.Stop()
	if !c.Publish(3, "news", nil, []byte("payload")) {
		t.Fatal("publish failed")
	}
	if !eventually(t, 5*time.Second, func() bool { return delivered.Load() == 24 }) {
		t.Fatalf("delivered %d of 24", delivered.Load())
	}
}

func TestLiveInterestFiltering(t *testing.T) {
	c := mustCluster(t, Config{N: 12, Fanout: 4, RoundPeriod: 5 * time.Millisecond, Seed: 2})
	var hot, cold atomic.Int64
	for i := 0; i < 12; i++ {
		i := i
		if i%2 == 0 {
			c.Subscribe(i, pubsub.MustParse(`price > 100`))
		} else {
			c.Subscribe(i, pubsub.MustParse(`price <= 100`))
		}
		c.OnDeliver(i, func(ev *pubsub.Event) {
			if i%2 == 0 {
				hot.Add(1)
			} else {
				cold.Add(1)
			}
		})
	}
	c.Start()
	defer c.Stop()
	c.Publish(0, "ticks", []pubsub.Attr{{Key: "price", Val: pubsub.Num(150)}}, nil)
	if !eventually(t, 5*time.Second, func() bool { return hot.Load() == 6 }) {
		t.Fatalf("hot deliveries %d of 6", hot.Load())
	}
	// Give stragglers a moment, then confirm no misdelivery.
	time.Sleep(50 * time.Millisecond)
	if cold.Load() != 0 {
		t.Fatalf("cold group delivered %d events", cold.Load())
	}
}

func TestLiveLedgerAccounting(t *testing.T) {
	c := mustCluster(t, Config{N: 8, Fanout: 3, RoundPeriod: 5 * time.Millisecond, Seed: 3})
	for i := 0; i < 8; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()
	defer c.Stop()
	c.Publish(0, "t", nil, []byte("x"))
	if !eventually(t, 5*time.Second, func() bool {
		var d uint64
		for i := 0; i < 8; i++ {
			d += c.Ledger().Account(i).Delivered
		}
		return d == 8
	}) {
		t.Fatal("deliveries not accounted")
	}
	if c.Ledger().Account(0).Published != 1 {
		t.Fatal("publish not accounted")
	}
	r := c.Report()
	if r.N != 8 {
		t.Fatalf("report over %d nodes", r.N)
	}
}

func TestLiveAdaptiveLeversMove(t *testing.T) {
	c := mustCluster(t, Config{
		N: 16, Fanout: 8, Batch: 16,
		RoundPeriod: 3 * time.Millisecond,
		TargetRatio: 100, // tight: over-contributors must shed
		Seed:        4,
	})
	for i := 0; i < 16; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()
	defer c.Stop()
	for k := 0; k < 10; k++ {
		c.Publish(k%16, "t", nil, make([]byte, 64))
		time.Sleep(5 * time.Millisecond)
	}
	moved := eventually(t, 5*time.Second, func() bool {
		for i := 0; i < c.N(); i++ {
			f, b, ok := c.Levers(i)
			if ok && (f != 8 || b != 16) {
				return true
			}
		}
		return false
	})
	if !moved {
		t.Fatal("no lever moved under adaptation")
	}
}

func TestLiveUnsubscribeStopsDelivery(t *testing.T) {
	c := mustCluster(t, Config{N: 6, Fanout: 3, RoundPeriod: 5 * time.Millisecond, Seed: 5})
	sub, _ := c.Subscribe(5, pubsub.MatchAll())
	c.Start()
	defer c.Stop()
	if !c.Unsubscribe(5, sub) {
		t.Fatal("unsubscribe failed")
	}
	c.Publish(0, "t", nil, nil)
	time.Sleep(100 * time.Millisecond)
	if d := c.Ledger().Account(5).Delivered; d != 0 {
		t.Fatalf("delivered %d after unsubscribe", d)
	}
	if c.Unsubscribe(5, sub) {
		t.Fatal("double unsubscribe succeeded")
	}
}

func TestLiveStopTerminates(t *testing.T) {
	c := mustCluster(t, Config{N: 16, Fanout: 4, RoundPeriod: 2 * time.Millisecond, Seed: 6})
	for i := 0; i < 16; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()
	c.Publish(0, "t", nil, nil)
	time.Sleep(30 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate")
	}
	// API calls after Stop are safe no-ops.
	if c.Publish(0, "t", nil, nil) {
		t.Fatal("publish succeeded after stop")
	}
	c.Stop() // idempotent
}

func TestLiveConcurrentPublishers(t *testing.T) {
	c := mustCluster(t, Config{
		N: 10, Fanout: 4, Batch: 32,
		RoundPeriod:  3 * time.Millisecond,
		BufferMaxAge: 24,
		Seed:         7,
	})
	for i := 0; i < 10; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()
	defer c.Stop()
	var wg sync.WaitGroup
	// Paced publishing: an unpaced burst would exceed what batch × buffer
	// TTL can spread (the EXP-A4 starvation regime) and lose events
	// legitimately.
	const perPublisher = 10
	for p := 0; p < 10; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perPublisher; k++ {
				c.Publish(p, "t", nil, nil)
				time.Sleep(3 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := uint64(10 * perPublisher * 10)
	if !eventually(t, 10*time.Second, func() bool {
		var d uint64
		for i := 0; i < 10; i++ {
			d += c.Ledger().Account(i).Delivered
		}
		return d == want
	}) {
		var d uint64
		for i := 0; i < 10; i++ {
			d += c.Ledger().Account(i).Delivered
		}
		t.Fatalf("delivered %d of %d", d, want)
	}
}

func TestLiveInvalidIDs(t *testing.T) {
	c := mustCluster(t, Config{N: 4, Seed: 8})
	if _, ok := c.Subscribe(-1, pubsub.MatchAll()); ok {
		t.Fatal("negative id accepted")
	}
	if _, ok := c.Subscribe(99, pubsub.MatchAll()); ok {
		t.Fatal("oob id accepted")
	}
	if c.Publish(99, "t", nil, nil) {
		t.Fatal("oob publish accepted")
	}
}

func TestLiveConfigDefaults(t *testing.T) {
	c := mustCluster(t, Config{})
	if c.N() != 2 {
		t.Fatalf("default N = %d", c.N())
	}
	if c.cfg.Fanout != 4 || c.cfg.Batch != 8 || c.cfg.InboxDepth != 1024 {
		t.Fatalf("defaults: %+v", c.cfg)
	}
	if c.cfg.ViewCap != 16 || c.cfg.ShuffleLen != 8 || c.cfg.ShuffleEvery != 2 {
		t.Fatalf("membership defaults: %+v", c.cfg)
	}
}
