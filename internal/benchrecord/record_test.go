package benchrecord

import (
	"os"
	"path/filepath"
	"testing"
)

func validRecord() Record {
	return Record{
		Date:    "2026-08-08T00:00:00Z",
		Seed:    1,
		Small:   true,
		Metrics: map[string]float64{"exp-f1.static.ratio_jain": 0.61, "seconds.exp-f1": 1.5},
		Experiments: []Experiment{{
			ID:      "EXP-F1",
			Title:   "fairness",
			Seconds: 1.5,
			Tables: []Table{{
				ID:   "EXP-F1",
				Cols: []string{"variant", "ratio_jain"},
				Rows: [][]string{{"static", "0.610"}},
			}},
		}},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	r := validRecord()
	if err := r.Validate(); err != nil {
		t.Fatalf("well-formed record rejected: %v", err)
	}
}

func TestValidateRejectsDrift(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"bad date", func(r *Record) { r.Date = "yesterday" }},
		{"empty metrics", func(r *Record) { r.Metrics = nil }},
		{"non-canonical key", func(r *Record) { r.Metrics["Bad Key!"] = 1 }},
		{"no experiments", func(r *Record) { r.Experiments = nil }},
		{"empty id", func(r *Record) { r.Experiments[0].ID = "" }},
		{"negative seconds", func(r *Record) { r.Experiments[0].Seconds = -1 }},
		{"ragged row", func(r *Record) { r.Experiments[0].Tables[0].Rows[0] = []string{"static"} }},
		{"no columns", func(r *Record) { r.Experiments[0].Tables[0].Cols = nil }},
	}
	for _, tc := range cases {
		r := validRecord()
		tc.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validation passed, want failure", tc.name)
		}
	}
}

func TestMetricKeyCanonicalises(t *testing.T) {
	cases := []struct {
		parts []string
		want  string
	}{
		{[]string{"EXP-F1", "static", "ratio_jain"}, "exp-f1.static.ratio_jain"},
		{[]string{"huge", "shards=4", "rounds_per_sec"}, "huge.shards4.rounds_per_sec"},
		{[]string{" Seconds ", "", "EXP-A3"}, "seconds.exp-a3"},
		{[]string{"a b/c"}, "a_b_c"},
	}
	for _, tc := range cases {
		if got := MetricKey(tc.parts...); got != tc.want {
			t.Errorf("MetricKey(%q) = %q, want %q", tc.parts, got, tc.want)
		}
	}
	// Canonical keys must be fixpoints (Validate depends on this).
	for _, k := range []string{"exp-f1.static.ratio_jain", "total_seconds", "huge.shards4.rounds_per_sec"} {
		if MetricKey(k) != k {
			t.Errorf("canonical key %q is not a MetricKey fixpoint (got %q)", k, MetricKey(k))
		}
	}
}

func TestHarvestTableFoldsNumericCells(t *testing.T) {
	m := map[string]float64{}
	HarvestTable(m, "EXP-F1", Table{
		Cols: []string{"variant", "ratio_jain", "note"},
		Rows: [][]string{
			{"static", "0.610", "baseline"},
			{"aimd", "0.905", "adaptive"},
		},
	})
	if got := m["exp-f1.static.ratio_jain"]; got != 0.610 {
		t.Errorf("static ratio_jain = %v, want 0.610", got)
	}
	if got := m["exp-f1.aimd.ratio_jain"]; got != 0.905 {
		t.Errorf("aimd ratio_jain = %v, want 0.905", got)
	}
	// Non-numeric cells and the label column itself are skipped.
	if len(m) != 2 {
		t.Errorf("harvested %d metrics, want 2: %v", len(m), m)
	}
}

// TestCheckedInRecordsParse is the drift gate of the bench trajectory:
// every BENCH_*.json checked in at the repository root and under
// results/ must parse against the benchrecord schema, with a non-empty
// flat metrics map. This is the regression test for the empty-trajectory
// bug, where records existed but carried no top-level numeric metrics.
func TestCheckedInRecordsParse(t *testing.T) {
	var paths []string
	for _, pat := range []string{"../../BENCH_*.json", "../../results/BENCH_*.json"} {
		got, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, got...)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in BENCH_*.json found at the repo root or results/ — the trajectory is empty")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Parse(data)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
			continue
		}
		if len(r.Metrics) == 0 {
			t.Errorf("%s: no trajectory metrics", filepath.Base(p))
		}
	}
}
