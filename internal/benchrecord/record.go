// Package benchrecord defines the schema of the BENCH_<date>.json run
// records fairbench emits and the performance-trajectory tooling scans.
//
// The original records buried every numeric value as a formatted string
// inside nested result tables, so trajectory scans of the repository
// root found records but no plottable numbers — an empty trajectory.
// The schema now requires a top-level flat `metrics` map (metric name →
// float64) alongside the human-oriented tables: emitters must populate
// it, and ValidateFile is run by `go test` over every checked-in record
// so schema drift fails the build instead of silently emptying the
// trajectory again.
package benchrecord

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Record is one fairbench run: replay coordinates (seed, scale), the
// flat numeric metrics the trajectory plots, and the per-experiment
// tables for humans.
type Record struct {
	Date  string `json:"date"`
	Seed  int64  `json:"seed"`
	Small bool   `json:"small"`
	// Metrics is the trajectory surface: flat metric name → value.
	// Names are lowercase dotted paths, e.g. "exp-f1.aimd.ratio_jain",
	// "seconds.exp-f1", "huge.rounds_per_sec.shards4".
	Metrics     map[string]float64 `json:"metrics"`
	Experiments []Experiment       `json:"experiments"`
}

// Experiment is one experiment's run: identity, wall-clock, and tables.
type Experiment struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Tables  []Table `json:"tables"`
}

// Table mirrors experiment.Table's JSON shape (the package stays
// dependency-free so any tool can import it for parsing alone).
type Table struct {
	ID    string
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// MetricKey builds a canonical metrics-map key from path segments:
// lowercased, spaces and slashes collapsed to '_', empty segments
// dropped, joined with '.'.
func MetricKey(parts ...string) string {
	clean := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.ToLower(strings.TrimSpace(p))
		p = strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
				return r
			case r == ' ', r == '/':
				return '_'
			default:
				return -1
			}
		}, p)
		if p != "" {
			clean = append(clean, p)
		}
	}
	return strings.Join(clean, ".")
}

// HarvestTable folds every numeric cell of a table into metrics, keyed
// <prefix>.<row label>.<column>; the first column is treated as the row
// label and never harvested itself. Non-numeric cells are skipped.
func HarvestTable(metrics map[string]float64, prefix string, t Table) {
	for _, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		label := row[0]
		for i := 1; i < len(row) && i < len(t.Cols); i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			metrics[MetricKey(prefix, label, t.Cols[i])] = v
		}
	}
}

// Validate checks a parsed record against the schema contract.
func (r *Record) Validate() error {
	if _, err := time.Parse(time.RFC3339, r.Date); err != nil {
		return fmt.Errorf("date %q is not RFC3339: %v", r.Date, err)
	}
	if len(r.Metrics) == 0 {
		return fmt.Errorf("metrics map is empty: the record contributes nothing to the trajectory")
	}
	for k, v := range r.Metrics {
		if k == "" || k != MetricKey(k) {
			return fmt.Errorf("metric key %q is not canonical (want %q)", k, MetricKey(k))
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("metric %q is not finite", k)
		}
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("no experiments recorded")
	}
	for _, e := range r.Experiments {
		if e.ID == "" {
			return fmt.Errorf("experiment with empty id")
		}
		if e.Seconds < 0 {
			return fmt.Errorf("experiment %s: negative wall-clock %f", e.ID, e.Seconds)
		}
		for ti, t := range e.Tables {
			if len(t.Cols) == 0 {
				return fmt.Errorf("experiment %s table %d: no columns", e.ID, ti)
			}
			for ri, row := range t.Rows {
				if len(row) != len(t.Cols) {
					return fmt.Errorf("experiment %s table %d row %d: %d cells for %d columns",
						e.ID, ti, ri, len(row), len(t.Cols))
				}
			}
		}
	}
	return nil
}

// Parse unmarshals and validates one record blob.
func Parse(data []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("not a bench record: %v", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
