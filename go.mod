module fairgossip

go 1.24
