// Benchmark harness: one benchmark per experiment in DESIGN.md §3. Each
// regenerates the corresponding figure/claim of the paper at bench scale
// and reports domain metrics (fairness indices, delivery ratios) via
// b.ReportMetric, so `go test -bench=.` reproduces the whole evaluation.
//
// Paper-scale runs (larger n, more rounds) are produced by
// `go run ./cmd/fairbench` — see EXPERIMENTS.md.
package fairgossip_test

import (
	"strconv"
	"testing"

	"fairgossip/internal/experiment"
)

// benchOpts gives every iteration a distinct seed so benches do not just
// re-measure one RNG path, while staying deterministic per iteration.
func benchOpts(i int) experiment.Options {
	return experiment.Options{Seed: int64(1 + i), Small: true}
}

// metric pulls a numeric cell out of a table for b.ReportMetric.
func metric(b *testing.B, t experiment.Table, row, col int) float64 {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		b.Fatalf("table %s has no cell (%d,%d)", t.ID, row, col)
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) of %s: %v", row, col, t.ID, err)
	}
	return v
}

func BenchmarkExpF1RatioFairness(b *testing.B) {
	var staticJain, adaptiveJain float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpF1(benchOpts(i))[0]
		staticJain += metric(b, t, 0, 1)
		adaptiveJain += metric(b, t, 1, 1)
	}
	b.ReportMetric(staticJain/float64(b.N), "static-jain")
	b.ReportMetric(adaptiveJain/float64(b.N), "aimd-jain")
}

func BenchmarkExpF2TopicAccounting(b *testing.B) {
	var flatCorr, groupCorr float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpF2(benchOpts(i))[0]
		flatCorr += metric(b, t, 0, 2)
		groupCorr += metric(b, t, 1, 2)
	}
	b.ReportMetric(flatCorr/float64(b.N), "flat-corr")
	b.ReportMetric(groupCorr/float64(b.N), "groups-corr")
}

func BenchmarkExpF3ExpressiveLevers(b *testing.B) {
	var bothCorr float64
	for i := 0; i < b.N; i++ {
		tables := experiment.ExpF3(benchOpts(i))
		final := tables[1]
		bothCorr += metric(b, final, 3, 3)
	}
	b.ReportMetric(bothCorr/float64(b.N), "both-levers-corr")
}

func BenchmarkExpF4PushGossip(b *testing.B) {
	var f1, f10 float64
	for i := 0; i < b.N; i++ {
		sweep := experiment.ExpF4(benchOpts(i))[0]
		f1 += metric(b, sweep, 0, 1)
		f10 += metric(b, sweep, len(sweep.Rows)-1, 1)
	}
	b.ReportMetric(f1/float64(b.N), "fanout1-coverage")
	b.ReportMetric(f10/float64(b.N), "fanout10-coverage")
}

func BenchmarkExpT1Scribe(b *testing.B) {
	var foreign float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpT1(benchOpts(i))[0]
		foreign += metric(b, t, 0, 1)
	}
	b.ReportMetric(foreign/float64(b.N), "scribe-foreign-fwd-pct")
}

func BenchmarkExpT2DAM(b *testing.B) {
	var bridgeRatio, leafRatio float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpT2(benchOpts(i))[0]
		leafRatio += metric(b, t, 0, 4)
		bridgeRatio += metric(b, t, 1, 4)
	}
	b.ReportMetric(bridgeRatio/leafRatio, "bridge-vs-leaf-ratio")
}

func BenchmarkExpT3Maintenance(b *testing.B) {
	var relays float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpT3(benchOpts(i))[0]
		relays += metric(b, t, 0, 1)
	}
	b.ReportMetric(relays/float64(b.N), "storm-walk-relays")
}

func BenchmarkExpT4BalanceVsFairness(b *testing.B) {
	var balJain, fgJain float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpT4(benchOpts(i))[0]
		balJain += metric(b, t, 0, 2)
		fgJain += metric(b, t, 1, 2)
	}
	b.ReportMetric(balJain/float64(b.N), "balanced-jain")
	b.ReportMetric(fgJain/float64(b.N), "fairgossip-jain")
}

func BenchmarkExpT5ChurnLoop(b *testing.B) {
	var staticQuits, adaptiveQuits float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpT5(benchOpts(i))[0]
		staticQuits += metric(b, t, 0, 1)
		adaptiveQuits += metric(b, t, 1, 1)
	}
	b.ReportMetric(staticQuits/float64(b.N), "static-ragequits")
	b.ReportMetric(adaptiveQuits/float64(b.N), "adaptive-ragequits")
}

func BenchmarkExpA1FanoutConvergence(b *testing.B) {
	var settle float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpA1(benchOpts(i))[0]
		settle += metric(b, t, 0, 2)
	}
	b.ReportMetric(settle/float64(b.N), "aimd-windows-to-settle")
}

func BenchmarkExpA2BatchConvergence(b *testing.B) {
	var settle float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpA2(benchOpts(i))[0]
		settle += metric(b, t, 0, 2)
	}
	b.ReportMetric(settle/float64(b.N), "aimd-windows-to-settle")
}

func BenchmarkExpA3MinFanout(b *testing.B) {
	var floor1, floorLnN float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpA3(benchOpts(i))[0]
		floor1 += metric(b, t, 0, 2)
		floorLnN += metric(b, t, len(t.Rows)-1, 2)
	}
	b.ReportMetric(floor1/float64(b.N), "fmin1-delivery")
	b.ReportMetric(floorLnN/float64(b.N), "fmin-lnN-delivery")
}

func BenchmarkExpA4MinBatch(b *testing.B) {
	var batch1, batch32 float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpA4(benchOpts(i))[0]
		batch1 += metric(b, t, 0, 1)
		batch32 += metric(b, t, len(t.Rows)-1, 1)
	}
	b.ReportMetric(batch1/float64(b.N), "batch1-delivery")
	b.ReportMetric(batch32/float64(b.N), "batch32-delivery")
}

func BenchmarkExpA5Robustness(b *testing.B) {
	var post float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpA5(benchOpts(i))[0]
		post += metric(b, t, 1, 2) // adaptive row, post-failure delivery
	}
	b.ReportMetric(post/float64(b.N), "adaptive-post-delivery")
}

func BenchmarkExpA6BiasResistance(b *testing.B) {
	var cheatUseful float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpA6(benchOpts(i))[0]
		cheatUseful += metric(b, t, 1, 3)
	}
	b.ReportMetric(cheatUseful/float64(b.N), "cheater-useful-frac")
}

func BenchmarkExpX1AntiEntropy(b *testing.B) {
	var push, pull float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpX1(benchOpts(i))[0]
		push += metric(b, t, 0, 1)
		pull += metric(b, t, 2, 1)
	}
	b.ReportMetric(push/float64(b.N), "push-coverage")
	b.ReportMetric(pull/float64(b.N), "pushpull-coverage")
}

func BenchmarkExpX2SemanticBias(b *testing.B) {
	var uniformMB, biasedMB float64
	for i := 0; i < b.N; i++ {
		t := experiment.ExpX2(benchOpts(i))[0]
		// camps=16 rows are the last two.
		n := len(t.Rows)
		uniformMB += metric(b, t, n-2, 3)
		biasedMB += metric(b, t, n-1, 3)
	}
	b.ReportMetric(uniformMB/float64(b.N), "uniform-mbytes")
	b.ReportMetric(biasedMB/float64(b.N), "biased-mbytes")
}
