# Developer entry points; CI runs `make ci`.

GO      ?= go
PKGS    := ./...
# End-to-end experiment benchmarks live in the repo root; per-package
# micro-benchmarks (eventsim, simnet, fairness, gossip) ride along.
BENCH   ?= .
OUT     ?= results

.PHONY: all build test race bench microbench vet fmt-check ci fairbench clean

all: build

build:
	$(GO) build $(PKGS)

# -shuffle=on randomises test (and subtest-sibling) execution order on
# every run, so order-dependent tests cannot hide behind file order.
test:
	$(GO) test -shuffle=on $(PKGS)

# The scenario package's race run includes the full builtin table over
# real loopback UDP sockets (TestBuiltinsOnLiveUDP) — the transport /
# codec concurrency is exercised under the detector on every CI run.
race:
	$(GO) test -race -shuffle=on ./internal/fairness/ ./internal/gossip/ ./internal/live/ ./internal/eventsim/ ./internal/simnet/ ./internal/scenario/ ./internal/transport/ ./internal/wire/ ./internal/membership/

# bench runs the Go benchmarks, then regenerates the dated
# BENCH_<date>.json run record via fairbench — every bench invocation
# leaves a fresh machine-readable baseline (CI uploads it as an
# artifact).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime 3x .
	$(GO) run ./cmd/fairbench -small -out $(OUT)

microbench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/eventsim/ ./internal/simnet/ ./internal/fairness/

vet:
	$(GO) vet $(PKGS)

fmt-check:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

ci: fmt-check vet build test race

# Regenerate every experiment table + CSVs + the BENCH_<date>.json run
# record (see PERFORMANCE.md).
fairbench:
	$(GO) run ./cmd/fairbench -small -out $(OUT)

clean:
	rm -rf $(OUT)
