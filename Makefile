# Developer entry points; CI runs `make ci`.

GO      ?= go
PKGS    := ./...
# End-to-end experiment benchmarks live in the repo root; per-package
# micro-benchmarks (eventsim, simnet, fairness, gossip) ride along.
BENCH   ?= .
OUT     ?= results

.PHONY: all build test race bench microbench vet fmt-check fairvet staticcheck lint lint-fast ci fairbench clean

# fairvet memoizes its `go list -export` module-graph walk when
# FAIRVET_CACHE names a directory (internal/analysis/cache.go); the
# lint targets opt in so repeat runs skip the multi-second walk. The
# cache self-invalidates on any source, module-file, or toolchain
# change. Point it elsewhere (or at "") to opt out.
FAIRVET_CACHE ?= $(CURDIR)/.fairvet-cache

# staticcheck is version-pinned: a drifting linter turns every upgrade
# into a triage session. Bump deliberately, re-triage, update
# staticcheck.conf (see LINTING.md).
STATICCHECK_VERSION := 2025.1.1

all: build

build:
	$(GO) build $(PKGS)

# -shuffle=on randomises test (and subtest-sibling) execution order on
# every run, so order-dependent tests cannot hide behind file order.
test:
	$(GO) test -shuffle=on $(PKGS)

# The scenario package's race run includes the full builtin table over
# real loopback UDP sockets (TestBuiltinsOnLiveUDP) — the transport /
# codec concurrency is exercised under the detector on every CI run.
# core rides along since the sharded kernel runs one goroutine per
# shard between round barriers (ledger chunks, mailboxes, the envelope
# pool freelist are all crossed by those goroutines).
race:
	$(GO) test -race -shuffle=on ./internal/core/ ./internal/fairness/ ./internal/gossip/ ./internal/live/ ./internal/eventsim/ ./internal/simnet/ ./internal/scenario/ ./internal/transport/ ./internal/wire/ ./internal/membership/

# bench runs the Go benchmarks, then regenerates the dated
# BENCH_<date>.json run record via fairbench — every bench invocation
# leaves a fresh machine-readable baseline (CI uploads it as an
# artifact). -huge appends the EXP-HUGE tier: N=100k nodes on the
# sharded kernel, swept over shard counts, so the record carries
# rounds/sec scaling alongside the protocol experiments.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime 3x .
	$(GO) run ./cmd/fairbench -small -huge -out $(OUT)

microbench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/eventsim/ ./internal/simnet/ ./internal/fairness/

vet:
	$(GO) vet $(PKGS)

fmt-check:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

# fairvet is the project's own vet: the analyzers in internal/analysis
# machine-enforce the repo invariants (fixed-seed determinism, drop
# conservation, buffer ownership, copy-on-write, hot-path allocation
# discipline). Zero unsuppressed findings, every escape hatch verified.
fairvet:
	FAIRVET_CACHE=$(FAIRVET_CACHE) $(GO) run ./cmd/fairvet $(PKGS)

# lint-fast is the inner-loop complement to `make lint`: fairvet only,
# and only over the packages whose Go files changed (committed or not)
# since the merge base with origin/main. Falls back to the whole tree
# when that ref is unavailable (fresh clones, detached CI checkouts).
lint-fast:
	@if base=$$(git merge-base origin/main HEAD 2>/dev/null); then \
		dirs=$$(git diff --name-only $$base -- '*.go' | grep -v '/testdata/' | xargs -r -n1 dirname | sort -u); \
		pkgs=$$(for d in $$dirs; do [ -d "$$d" ] && printf './%s ' "$$d"; done); \
		if [ -z "$$pkgs" ]; then echo "lint-fast: no Go packages changed since origin/main"; \
		else echo "lint-fast: fairvet $$pkgs"; FAIRVET_CACHE=$(FAIRVET_CACHE) $(GO) run ./cmd/fairvet $$pkgs; fi; \
	else \
		echo "lint-fast: origin/main unavailable; running the full tree"; \
		FAIRVET_CACHE=$(FAIRVET_CACHE) $(GO) run ./cmd/fairvet $(PKGS); \
	fi

# staticcheck runs only when the pinned binary is available (the tool
# is an external module; offline or hermetic builds skip it with a
# notice rather than failing). Config lives in staticcheck.conf.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		ver=$$(staticcheck -version 2>/dev/null || true); \
		case "$$ver" in \
		*$(STATICCHECK_VERSION)*) ;; \
		*) echo "staticcheck: $$ver (pinned: $(STATICCHECK_VERSION)) — results may drift";; \
		esac; \
		staticcheck $(PKGS); \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) not installed; skipping (see LINTING.md)"; \
	fi

lint: fmt-check vet fairvet staticcheck

ci: lint build test race

# Regenerate every experiment table + CSVs + the BENCH_<date>.json run
# record (see PERFORMANCE.md).
fairbench:
	$(GO) run ./cmd/fairbench -small -out $(OUT)

clean:
	rm -rf $(OUT)
