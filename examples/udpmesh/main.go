// UDP mesh: the live runtime as a real networked system. Every peer
// owns a loopback datagram socket; gossip envelopes are encoded with
// the binary wire codec on send and decoded on receive, so the bytes
// the fairness ledger charges are exactly the bytes that crossed the
// kernel. Swap fairgossip.TransportUDP() for TransportChan() (or leave
// Transport nil) and the identical program runs in-process.
//
// Run with: go run ./examples/udpmesh
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"fairgossip"
)

func main() {
	const n = 10
	cluster, err := fairgossip.NewLive(fairgossip.LiveConfig{
		N:           n,
		RoundPeriod: 10 * time.Millisecond,
		Seed:        7,
		Transport:   fairgossip.TransportUDP(),
	})
	if err != nil {
		panic(err) // socket bind refused
	}
	defer cluster.Stop()

	var delivered atomic.Int64
	for i := 0; i < n; i++ {
		topic := "alerts"
		if i%2 == 1 {
			topic = "metrics"
		}
		if _, ok := cluster.Subscribe(i, fairgossip.TopicFilter(topic)); !ok {
			panic("subscribe failed")
		}
		cluster.OnDeliver(i, func(*fairgossip.Event) { delivered.Add(1) })
		fmt.Printf("node %2d listening on %-22s for %s\n", i, cluster.Addr(i), topic)
	}

	cluster.Start()
	cluster.Publish(0, "alerts", nil, []byte("disk 92% full"))
	cluster.Publish(1, "metrics", nil, []byte("p99=41ms"))

	// One event per topic, half the mesh interested in each.
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cluster.Stop() // settle the sockets so the traffic numbers are final

	tr := cluster.Traffic()
	fmt.Printf("\n%d deliveries (expected %d) over real sockets\n", delivered.Load(), n)
	fmt.Printf("transport traffic: %d envelopes sent, %d received, %d dropped\n", tr.Sent, tr.Recv, tr.Dropped)
	fmt.Println("\nfairness report:")
	fmt.Println(cluster.Report().String())
}
