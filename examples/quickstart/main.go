// Quickstart: a 16-peer live (goroutine-per-peer) FairGossip cluster.
// Half the peers subscribe to "news.eu", half to "news.us"; one event is
// published on each topic and every interested peer prints its delivery.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"fairgossip"
)

func main() {
	const n = 16
	cluster, err := fairgossip.NewLive(fairgossip.LiveConfig{
		N:           n,
		RoundPeriod: 10 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}

	var delivered atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		topic := "news.eu"
		if i%2 == 1 {
			topic = "news.us"
		}
		if _, ok := cluster.Subscribe(i, fairgossip.TopicFilter(topic)); !ok {
			panic("subscribe failed")
		}
		cluster.OnDeliver(i, func(ev *fairgossip.Event) {
			delivered.Add(1)
			fmt.Printf("peer %2d delivered %-8s %q\n", i, ev.Topic, ev.Payload)
		})
	}

	cluster.Start()
	defer cluster.Stop()

	cluster.Publish(0, "news.eu", nil, []byte("ECB holds rates"))
	cluster.Publish(1, "news.us", nil, []byte("Fed minutes released"))

	// Each event is interesting to n/2 peers.
	for delivered.Load() < n && !timedOut() {
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Printf("\n%d deliveries (expected %d)\n\n", delivered.Load(), n)
	fmt.Println("fairness report:")
	fmt.Println(cluster.Report().String())
}

var deadline = time.Now().Add(10 * time.Second)

func timedOut() bool { return time.Now().After(deadline) }
