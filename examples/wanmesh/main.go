// WAN mesh: the UDP mesh of examples/udpmesh pushed through the WAN
// shaping middleware. LiveConfig.Shape wraps the socket transport with
// per-link delay, jitter, reordering and seeded i.i.d. loss — a
// wide-area path on loopback — and then one peer rebinds to a fresh
// socket mid-run, the way a mobile client hops networks. Every message
// the shaper eats is counted: the traffic line below still balances
// sent == received + dropped exactly, with the shaper's share broken
// out.
//
// Run with: go run ./examples/wanmesh
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"fairgossip"
)

func main() {
	const n = 10
	cluster, err := fairgossip.NewLive(fairgossip.LiveConfig{
		N:           n,
		RoundPeriod: 10 * time.Millisecond,
		Seed:        11,
		Transport:   fairgossip.TransportUDP(),
		Shape: &fairgossip.TransportProfile{
			Delay:   2 * time.Millisecond,
			Jitter:  4 * time.Millisecond,
			Reorder: 0.10,
			Loss:    0.05,
		},
	})
	if err != nil {
		panic(err) // socket bind refused
	}
	defer cluster.Stop()

	var delivered atomic.Int64
	for i := 0; i < n; i++ {
		if _, ok := cluster.Subscribe(i, fairgossip.TopicFilter("telemetry")); !ok {
			panic("subscribe failed")
		}
		cluster.OnDeliver(i, func(*fairgossip.Event) { delivered.Add(1) })
	}

	cluster.Start()
	fmt.Printf("%d peers gossiping across a shaped WAN path (5%% loss, 2-6ms delay)\n\n", n)

	for k := 0; k < 5; k++ {
		cluster.Publish(k%n, "telemetry", nil, []byte("sample"))
		time.Sleep(20 * time.Millisecond)
	}

	// A mobile peer switches networks: new socket, same identity. The
	// old socket keeps draining while the new one takes over, and the
	// peer re-announces itself through the join path.
	before := cluster.Addr(3)
	cluster.Rebind(3)
	fmt.Printf("peer 3 roamed: %s -> %s\n", before, cluster.Addr(3))

	for k := 5; k < 10; k++ {
		cluster.Publish(k%n, "telemetry", nil, []byte("sample"))
		time.Sleep(20 * time.Millisecond)
	}

	// 10 events × n interested peers, minus whatever the WAN ate.
	want := int64(10 * n)
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cluster.Stop() // flushes the shaper's in-flight queue, settles the books

	tr := cluster.Traffic()
	fmt.Printf("\n%d of %d deliveries through the shaped WAN\n", delivered.Load(), want)
	fmt.Printf("transport traffic: %d envelopes sent, %d received, %d dropped (%d by the shaper)\n",
		tr.Sent, tr.Recv, tr.Dropped, tr.ShaperDrops)
	if tr.Sent != tr.Recv+tr.Dropped {
		panic("conservation broke") // never: every shaper loss is counted
	}
	fmt.Println("books balance: sent == received + dropped, loss and all")
}
