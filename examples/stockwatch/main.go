// Stockwatch: content-based (expressive) selection on a live cluster.
// Peers register filters over typed attributes — price thresholds, symbol
// sets, regions — and a feed goroutine publishes synthetic ticks. This is
// the §5.2 "expressive event selection" setting running on real
// goroutines.
//
// Run with: go run ./examples/stockwatch
package main

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"fairgossip"
	"fairgossip/internal/workload"
)

func main() {
	const n = 12
	cluster, err := fairgossip.NewLive(fairgossip.LiveConfig{
		N:           n,
		RoundPeriod: 10 * time.Millisecond,
		TargetRatio: 3000, // fairness-adaptive participation
		Seed:        3,
	})
	if err != nil {
		panic(err)
	}

	filters := []string{
		`price > 900`, // rare: whale alerts
		`symbol in ["SYM00", "SYM01"] && price > 500`,  // the blue chips
		`region == "eu" && volume >= 50000`,            // EU big volume
		`price <= 100`,                                 // penny ticks
		`symbol startswith "SYM0" && region != "apac"`, // western listings
		`volume > 90000 || price > 990`,                // anything extreme
	}
	counts := make([]atomic.Int64, n)
	for i := 0; i < n; i++ {
		i := i
		src := filters[i%len(filters)]
		if _, ok := cluster.Subscribe(i, fairgossip.MustParseFilter(src)); !ok {
			panic("subscribe failed")
		}
		cluster.OnDeliver(i, func(*fairgossip.Event) { counts[i].Add(1) })
		fmt.Printf("peer %2d watches  %s\n", i, src)
	}

	cluster.Start()
	defer cluster.Stop()

	// Feed: 400 ticks published round-robin by the peers themselves.
	stocks := workload.NewStocks(10)
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 400; k++ {
		cluster.Publish(k%n, "ticks", stocks.Event(rng), nil)
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond) // drain

	fmt.Println("\ndeliveries per peer (interest-dependent):")
	for i := 0; i < n; i++ {
		fmt.Printf("  peer %2d  %4d ticks  (F=%d N=%d after adaptation)\n",
			i, counts[i].Load(), leverF(cluster, i), leverN(cluster, i))
	}
	fmt.Println("\nfairness report:")
	fmt.Println(cluster.Report().String())
}

func leverF(c *fairgossip.LiveCluster, i int) int {
	f, _, _ := c.Levers(i)
	return f
}

func leverN(c *fairgossip.LiveCluster, i int) int {
	_, b, _ := c.Levers(i)
	return b
}
