// Newsfeed: topic-based dissemination with Zipf-popular topics — the
// workload from the paper's motivation. Runs the same subscription
// pattern through classic static gossip and through the fairness-adaptive
// protocol, and prints both fairness reports side by side (a miniature of
// experiment EXP-F1).
//
// Run with: go run ./examples/newsfeed
package main

import (
	"fmt"
	"math/rand"
	"time"

	"fairgossip"
	"fairgossip/internal/simnet"
	"fairgossip/internal/workload"
)

const (
	peers   = 128
	nTopics = 32
	rounds  = 150
)

func main() {
	fmt.Printf("newsfeed: %d peers, %d Zipf topics, %d publishing rounds\n\n", peers, nTopics, rounds)

	static := run(fairgossip.ControllerSpec{Kind: fairgossip.ControllerStatic})
	adaptive := run(fairgossip.ControllerSpec{Kind: fairgossip.ControllerAIMD, TargetRatio: 2000})

	fmt.Println("=== classic static gossip (the paper's unfair baseline) ===")
	fmt.Println(static.String())
	fmt.Println("=== FairGossip adaptive (fanout+batch controller) ===")
	fmt.Println(adaptive.String())
	fmt.Printf("Jain's fairness index: %.3f (static) -> %.3f (adaptive)\n",
		static.RatioJain, adaptive.RatioJain)
	fmt.Printf("work~benefit correlation: %.3f (static) -> %.3f (adaptive)\n",
		static.ContribBenefitCorr, adaptive.ContribBenefitCorr)
}

func run(spec fairgossip.ControllerSpec) fairgossip.Report {
	cluster := fairgossip.NewSim(peers, fairgossip.SimConfig{
		Mode:       fairgossip.ModeContent,
		Fanout:     6,
		Batch:      8,
		Controller: spec,
	}, fairgossip.SimOptions{
		Seed:      7,
		NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
	})

	topics := workload.NewTopics(nTopics, 1.01)
	rng := rand.New(rand.NewSource(7))
	subsOf := make(map[string][]int)
	for i := 0; i < peers; i++ {
		for _, topic := range topics.SampleSet(rng, workload.SubCount(rng, 1, 8)) {
			cluster.Node(i).Subscribe(fairgossip.TopicFilter(topic))
			subsOf[topic] = append(subsOf[topic], i)
		}
	}

	cluster.RunRounds(10)
	for r := 0; r < rounds; r++ {
		topic := topics.Sample(rng)
		pub := rng.Intn(peers)
		if subs := subsOf[topic]; len(subs) > 0 {
			pub = subs[rng.Intn(len(subs))]
		}
		cluster.Node(pub).Publish(topic, nil, []byte("breaking news"))
		cluster.RunRounds(1)
	}
	cluster.RunRounds(10)
	return cluster.Report()
}
