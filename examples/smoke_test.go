// Package examples_test builds and runs every example program with a
// hard timeout, so examples/quickstart and friends cannot silently rot
// as the library underneath them moves.
package examples_test

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// examples maps each example directory to a string its output must
// contain when it runs to completion.
var examples = map[string]string{
	"quickstart": "fairness report:",
	"newsfeed":   "Jain's fairness index:",
	"stockwatch": "deliveries per peer",
	"churnstorm": "rage-quits:",
	"udpmesh":    "over real sockets",
	"wanmesh":    "books balance",
}

// TestExamplesBuildAndRun builds each example binary once and runs it
// under a timeout. Examples are tiny demos; any one of them taking more
// than a minute (or crashing, or losing its landmark output) is rot.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs are not short")
	}
	bin := t.TempDir()
	for name, landmark := range examples {
		name, landmark := name, landmark
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			exe := filepath.Join(bin, name)
			build := exec.Command("go", "build", "-o", exe, "./"+name)
			build.Dir = "."
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./%s: %v\n%s", name, err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			var out bytes.Buffer
			cmd := exec.CommandContext(ctx, exe)
			cmd.Stdout = &out
			cmd.Stderr = &out
			if err := cmd.Run(); err != nil {
				if ctx.Err() != nil {
					t.Fatalf("%s timed out; output so far:\n%s", name, tail(out.String()))
				}
				t.Fatalf("%s failed: %v\n%s", name, err, tail(out.String()))
			}
			if !strings.Contains(out.String(), landmark) {
				t.Fatalf("%s output lost its landmark %q:\n%s", name, landmark, tail(out.String()))
			}
		})
	}
}

// TestExamplesAreListed fails when a new example directory is not wired
// into this smoke test.
func TestExamplesAreListed(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			if _, ok := examples[e.Name()]; !ok {
				t.Errorf("example %q is not covered by the smoke test", e.Name())
			}
		}
	}
}

func tail(s string) string {
	const keep = 2000
	if len(s) <= keep {
		return s
	}
	return "..." + s[len(s)-keep:]
}
