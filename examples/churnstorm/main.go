// Churnstorm: the paper's motivating feedback loop (§1/§6) made visible.
// A minority of peers receives little benefit; under classic gossip they
// do as much work as everyone else, perceive unfairness, and rage-quit —
// degrading reliability for all. The adaptive protocol defuses the loop.
//
// The phase loop runs on the scenario engine's rage-quit driver
// (internal/scenario.RageQuitLoop) — the same machinery EXP-T5 uses.
//
// Run with: go run ./examples/churnstorm
package main

import (
	"fmt"
	"math/rand"
	"time"

	"fairgossip"
	"fairgossip/internal/fairness"
	"fairgossip/internal/scenario"
	"fairgossip/internal/simnet"
	"fairgossip/internal/workload"
)

const (
	peers  = 96
	phases = 16
)

func main() {
	fmt.Printf("churnstorm: %d peers, 25%% light-interest minority, rage-quit at 2.5x median ratio\n\n", peers)
	for _, variant := range []struct {
		name string
		spec fairgossip.ControllerSpec
	}{
		{"classic static gossip", fairgossip.ControllerSpec{Kind: fairgossip.ControllerStatic}},
		{"FairGossip adaptive", fairgossip.ControllerSpec{Kind: fairgossip.ControllerAIMD, TargetRatio: 2500}},
	} {
		quits, downtime := run(variant.spec)
		fmt.Printf("=== %s ===\n", variant.name)
		fmt.Printf("  rage-quits:            %d\n", quits)
		fmt.Printf("  light-node downtime:   %.1f%%\n\n", downtime)
	}
}

func run(spec fairgossip.ControllerSpec) (quits int, downtimePct float64) {
	cluster := fairgossip.NewSim(peers, fairgossip.SimConfig{
		Mode:          fairgossip.ModeContent,
		Fanout:        5,
		Batch:         8,
		Controller:    spec,
		RepairPenalty: 200,
	}, fairgossip.SimOptions{
		Seed:      11,
		NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
	})

	stocks := workload.NewStocks(16)
	var light []int
	for i := 0; i < peers; i++ {
		if i%4 == 0 {
			cluster.Node(i).Subscribe(stocks.FilterWithSelectivity(0.05))
			light = append(light, i)
		} else {
			cluster.Node(i).Subscribe(stocks.FilterWithSelectivity(0.5))
		}
	}

	cluster.RunRounds(5)
	rng := rand.New(rand.NewSource(11))
	lightDownChecks := 0
	prev := cluster.Ledger.Snapshot()

	loop := &scenario.RageQuitLoop{
		Phases: phases,
		Quit:   workload.NewRageQuit(2.5, 2),
		Publish: func(int) {
			for r := 0; r < 10; r++ {
				cluster.Node(rng.Intn(peers)).Publish("ticks", stocks.Event(rng), nil)
				cluster.RunRounds(1)
			}
		},
		AfterPublish: func(int) {
			for _, id := range light {
				if !cluster.Node(id).Active() {
					lightDownChecks++
				}
			}
		},
		Ratios: func(int) []float64 {
			cur := cluster.Ledger.Snapshot()
			ratios := make([]float64, peers)
			for i := range ratios {
				ratios[i] = fairness.Ratio(fairness.Delta(cur[i], prev[i]), cluster.Ledger.Weights())
			}
			prev = cur
			return ratios
		},
		Active: func(i int) bool { return cluster.Node(i).Active() },
		Leave: func(phase, id int, ratio, med float64) {
			fmt.Printf("  phase %2d: peer %2d rage-quits (window ratio %.0f vs median %.0f)\n",
				phase, id, ratio, med)
			cluster.Node(id).Leave()
		},
		Rejoin: func(id int) { cluster.Node(id).Rejoin(0) },
	}
	quits = loop.Run()
	return quits, 100 * float64(lightDownChecks) / float64(len(light)*phases)
}
