package fairgossip_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fairgossip"
)

func TestFacadeLiveRoundTrip(t *testing.T) {
	c, err := fairgossip.NewLive(fairgossip.LiveConfig{
		N: 8, RoundPeriod: 5 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	for i := 0; i < 8; i++ {
		if _, ok := c.Subscribe(i, fairgossip.MustParseFilter(`price > 100`)); !ok {
			t.Fatal("subscribe failed")
		}
		c.OnDeliver(i, func(*fairgossip.Event) { got.Add(1) })
	}
	c.Start()
	defer c.Stop()
	c.Publish(0, "ticks", []fairgossip.Attr{{Key: "price", Val: fairgossip.Num(250)}}, nil)
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 8 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != 8 {
		t.Fatalf("delivered %d of 8", got.Load())
	}
	if r := c.Report(); r.N != 8 {
		t.Fatalf("report N = %d", r.N)
	}
}

// TestFacadeLiveUDPRoundTrip: the LiveConfig.Transport knob surfaces
// through NewLive — the same facade program runs over real loopback
// sockets with the wire codec on every link.
func TestFacadeLiveUDPRoundTrip(t *testing.T) {
	c, err := fairgossip.NewLive(fairgossip.LiveConfig{
		N: 6, RoundPeriod: 5 * time.Millisecond, Seed: 2,
		Transport: fairgossip.TransportUDP(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	for i := 0; i < 6; i++ {
		if _, ok := c.Subscribe(i, fairgossip.MatchAll()); !ok {
			t.Fatal("subscribe failed")
		}
		c.OnDeliver(i, func(*fairgossip.Event) { got.Add(1) })
	}
	c.Start()
	defer c.Stop()
	c.Publish(0, "ticks", nil, []byte("over udp"))
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() != 6 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != 6 {
		t.Fatalf("delivered %d of 6", got.Load())
	}
	if tr := c.Traffic(); tr.Sent == 0 {
		t.Fatal("no transport traffic counted")
	}
	if !strings.HasPrefix(c.Addr(0), "127.0.0.1:") {
		t.Fatalf("Addr(0) = %q, want a loopback socket", c.Addr(0))
	}
}

// TestFacadeScenarioLiveUDP: the third differential runtime column is
// reachable by name through the public scenario API.
func TestFacadeScenarioLiveUDP(t *testing.T) {
	res, err := fairgossip.RunScenario("calm", "live-udp", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if res.Runtime != "live-udp" {
		t.Fatalf("runtime %q, want live-udp", res.Runtime)
	}
	if _, err := fairgossip.RunScenario("calm", "warp", 5); err == nil {
		t.Fatal("unknown runtime accepted")
	}
}

func TestFacadeSimRoundTrip(t *testing.T) {
	c := fairgossip.NewSim(32, fairgossip.SimConfig{
		Mode:       fairgossip.ModeContent,
		Fanout:     5,
		Controller: fairgossip.ControllerSpec{Kind: fairgossip.ControllerAIMD, TargetRatio: 2000},
	}, fairgossip.SimOptions{Seed: 42})
	for _, nd := range c.Nodes {
		nd.Subscribe(fairgossip.MatchAll())
	}
	c.RunRounds(5)
	c.Node(0).Publish("t", nil, []byte("x"))
	c.RunRounds(20)
	if got := c.DeliveredTotal(); got != 32 {
		t.Fatalf("delivered %d of 32", got)
	}
}

func TestFacadeFilterHelpers(t *testing.T) {
	ev := &fairgossip.Event{Topic: "sports.f1"}
	if !fairgossip.TopicFilter("sports.f1").Match(ev) {
		t.Fatal("TopicFilter")
	}
	if !fairgossip.TopicPrefixFilter("sports").Match(ev) {
		t.Fatal("TopicPrefixFilter")
	}
	if !fairgossip.MatchAll().Match(ev) {
		t.Fatal("MatchAll")
	}
	if _, err := fairgossip.ParseFilter(`broken ==`); err == nil {
		t.Fatal("ParseFilter must propagate errors")
	}
	if fairgossip.String("x").Kind() == fairgossip.Num(1).Kind() {
		t.Fatal("value kinds collapsed")
	}
	if !fairgossip.Bool(true).BoolVal() {
		t.Fatal("Bool")
	}
	if fairgossip.DefaultWeights().Kappa != 1 {
		t.Fatal("DefaultWeights")
	}
}
