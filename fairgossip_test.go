package fairgossip_test

import (
	"sync/atomic"
	"testing"
	"time"

	"fairgossip"
)

func TestFacadeLiveRoundTrip(t *testing.T) {
	c := fairgossip.NewLive(fairgossip.LiveConfig{
		N: 8, RoundPeriod: 5 * time.Millisecond, Seed: 1,
	})
	var got atomic.Int64
	for i := 0; i < 8; i++ {
		if _, ok := c.Subscribe(i, fairgossip.MustParseFilter(`price > 100`)); !ok {
			t.Fatal("subscribe failed")
		}
		c.OnDeliver(i, func(*fairgossip.Event) { got.Add(1) })
	}
	c.Start()
	defer c.Stop()
	c.Publish(0, "ticks", []fairgossip.Attr{{Key: "price", Val: fairgossip.Num(250)}}, nil)
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 8 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != 8 {
		t.Fatalf("delivered %d of 8", got.Load())
	}
	if r := c.Report(); r.N != 8 {
		t.Fatalf("report N = %d", r.N)
	}
}

func TestFacadeSimRoundTrip(t *testing.T) {
	c := fairgossip.NewSim(32, fairgossip.SimConfig{
		Mode:       fairgossip.ModeContent,
		Fanout:     5,
		Controller: fairgossip.ControllerSpec{Kind: fairgossip.ControllerAIMD, TargetRatio: 2000},
	}, fairgossip.SimOptions{Seed: 42})
	for _, nd := range c.Nodes {
		nd.Subscribe(fairgossip.MatchAll())
	}
	c.RunRounds(5)
	c.Node(0).Publish("t", nil, []byte("x"))
	c.RunRounds(20)
	if got := c.DeliveredTotal(); got != 32 {
		t.Fatalf("delivered %d of 32", got)
	}
}

func TestFacadeFilterHelpers(t *testing.T) {
	ev := &fairgossip.Event{Topic: "sports.f1"}
	if !fairgossip.TopicFilter("sports.f1").Match(ev) {
		t.Fatal("TopicFilter")
	}
	if !fairgossip.TopicPrefixFilter("sports").Match(ev) {
		t.Fatal("TopicPrefixFilter")
	}
	if !fairgossip.MatchAll().Match(ev) {
		t.Fatal("MatchAll")
	}
	if _, err := fairgossip.ParseFilter(`broken ==`); err == nil {
		t.Fatal("ParseFilter must propagate errors")
	}
	if fairgossip.String("x").Kind() == fairgossip.Num(1).Kind() {
		t.Fatal("value kinds collapsed")
	}
	if !fairgossip.Bool(true).BoolVal() {
		t.Fatal("Bool")
	}
	if fairgossip.DefaultWeights().Kappa != 1 {
		t.Fatal("DefaultWeights")
	}
}
