// Package fairgossip is a fairness-aware selective event dissemination
// library — a full implementation of the system sketched in "Towards Fair
// Event Dissemination" (Baehni, Guerraoui, Koldehofe, Monod; ICDCS 2007).
//
// The paper's position: decentralised publish/subscribe is only
// meaningful if it is *fair* — each participant's contribution (messages
// forwarded and published) should track its benefit (events delivered,
// subscriptions held), so that the ratio contribution/benefit is the same
// constant f for every peer (the paper's Fig. 1). This library provides:
//
//   - The selective-information model of §2: typed events, a subscription
//     language with topic and content filters, and per-process interest.
//   - The basic push gossip dissemination algorithm of Fig. 4.
//   - Fairness accounting per Figs. 1–3 (contribution/benefit ledger,
//     Jain/Gini/Lorenz reports).
//   - The §5.2 adaptive participation controllers that steer each peer's
//     fanout and gossip message size toward the fairness target.
//   - Topic-based gossip groups with random-walk subscriptions (§5.1).
//   - The baselines the paper measures itself against: Scribe-style
//     rendezvous trees over a prefix-routing DHT, data-aware multicast
//     over topic hierarchies, and load-balanced (SplitStream-flavoured)
//     forwarding.
//
// Two runtimes are provided. NewSim builds a deterministic
// discrete-event-simulated cluster (what the experiments in
// cmd/fairbench use); NewLive builds a real-concurrency cluster with one
// goroutine per peer, suitable for embedding in applications.
//
// Both runtimes can be driven through the fault-injection scenario
// engine (RunScenario): seeded schedules of churn, partitions, loss,
// flash crowds, subscription churn and free-riders, with machine-checked
// invariants. SCENARIOS.md at the repository root documents the scenario
// vocabulary, the built-in table, and each invariant.
//
// The live runtime moves messages through a pluggable transport: the
// default delivers encoded envelopes in-process; TransportUDP runs one
// real loopback datagram socket per peer with the compact binary wire
// codec on both ends (see cmd/fairnode and examples/udpmesh for a
// multi-socket cluster end to end).
//
// Live membership is a Cyclon partial view per peer, maintained as real
// wire traffic: shuffle offers and replies are encoded envelopes whose
// bytes are charged to the fairness ledger as infrastructure
// contribution, and gossip partner selection samples the view — no peer
// reads a full membership roster. Clusters are dynamic:
// LiveCluster.Join boots a new peer into a running cluster through a
// seed peer (on UDP it binds a fresh socket), and the scenario engine's
// JoinNodes action / "join-wave" builtin exercise joining under the
// checked invariants.
//
// Quick start (live runtime):
//
//	c, err := fairgossip.NewLive(fairgossip.LiveConfig{N: 16, TargetRatio: 2000})
//	if err != nil { ... }
//	c.Subscribe(3, fairgossip.MustParseFilter(`price > 100`))
//	c.Start()
//	defer c.Stop()
//	c.Publish(0, "ticks", []fairgossip.Attr{{Key: "price", Val: fairgossip.Num(250)}}, nil)
package fairgossip

import (
	"fmt"

	"fairgossip/internal/core"
	"fairgossip/internal/fairness"
	"fairgossip/internal/live"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/scenario"
	"fairgossip/internal/transport"
)

// Core data model (see internal/pubsub).
type (
	// Event is a published notification.
	Event = pubsub.Event
	// EventID identifies an event as (publisher, sequence).
	EventID = pubsub.EventID
	// Attr is a typed event attribute.
	Attr = pubsub.Attr
	// Value is a typed attribute value (string, number or bool).
	Value = pubsub.Value
	// Filter is a compiled subscription-language expression.
	Filter = pubsub.Filter
	// SubID identifies an active subscription within one peer.
	SubID = pubsub.SubID
)

// Fairness accounting (see internal/fairness).
type (
	// Report summarises the contribution/benefit ratio distribution.
	Report = fairness.Report
	// Weights parameterises the contribution and benefit formulas.
	Weights = fairness.Weights
)

// Runtimes.
type (
	// LiveCluster is the goroutine-per-peer runtime.
	LiveCluster = live.Cluster
	// LiveConfig parameterises NewLive.
	LiveConfig = live.Config
	// SimCluster is the deterministic simulated runtime.
	SimCluster = core.Cluster
	// SimConfig parameterises a simulated cluster's protocol.
	SimConfig = core.Config
	// SimOptions parameterises a simulated cluster's environment.
	SimOptions = core.ClusterOptions
	// ControllerSpec selects static or adaptive participation.
	ControllerSpec = core.ControllerSpec
)

// Selectivity modes (SimConfig.Mode).
const (
	// ModeContent is expressive content-based selection over one flat
	// overlay (§5.2).
	ModeContent = core.ModeContent
	// ModeTopics is topic-based selection with per-topic gossip groups
	// (§5.1).
	ModeTopics = core.ModeTopics
)

// Controller kinds (ControllerSpec.Kind).
const (
	// ControllerStatic pins fanout and batch (classic gossip).
	ControllerStatic = core.ControllerStatic
	// ControllerAIMD adapts with additive-increase/multiplicative-decrease.
	ControllerAIMD = core.ControllerAIMD
	// ControllerProportional adapts with a damped P-controller.
	ControllerProportional = core.ControllerProportional
)

// Live-runtime transport plumbing (see internal/transport). A Transport
// is one peer's endpoint; a TransportNet wires a cluster's endpoints
// together; a TransportFactory is the LiveConfig.Transport knob. Custom
// substrates plug in by implementing these interfaces.
type (
	// Transport is a single peer's sending endpoint.
	Transport = transport.Transport
	// TransportNet wires the endpoints of one cluster together.
	TransportNet = transport.Net
	// TransportHandler consumes one inbound encoded envelope.
	TransportHandler = transport.Handler
	// TransportFactory builds the TransportNet for an n-peer cluster.
	TransportFactory = transport.Factory
	// LiveTraffic is the live cluster's envelope-level traffic counters.
	LiveTraffic = live.Traffic
)

// WAN shaping middleware (see internal/transport). ShapeTransport wraps
// any TransportNet — the in-process channels, the UDP sockets, or a
// custom substrate — with per-link delay, jitter, reorder, i.i.d. loss,
// token-bucket bandwidth caps and correlated regional outages, all
// drawn from one seeded RNG. Every shaper-induced loss is counted, so
// the cluster's sent == received + dropped ledger stays exact. The
// LiveConfig.Shape knob installs it inside a cluster; scenario shaping
// (ShapeSpec, the shaped-wan/regional-outage/mobile-rebind/
// intermittent-links builtins) drives it in round-relative units on
// every differential column.
type (
	// TransportProfile parameterises the shaping middleware.
	TransportProfile = transport.Profile
	// ShapedTransportNet is a TransportNet wrapped by ShapeTransport; it
	// adds SetProfile, SetOutage, Drops and Rebind on top of Net.
	ShapedTransportNet = transport.ShapedNet
	// ShapeSpec is a round-relative shaping profile for scenarios.
	ShapeSpec = scenario.ShapeSpec
)

// ShapeTransport wraps a TransportNet with the WAN shaping middleware.
func ShapeTransport(inner TransportNet, p TransportProfile) *ShapedTransportNet {
	return transport.Shape(inner, p)
}

// ShapePreset returns a named round-relative shaping profile ("none",
// "wan", "lossy-wan", "mobile") for scenario runs; nil means unshaped.
func ShapePreset(name string) (*ShapeSpec, bool) { return scenario.ShapePreset(name) }

// ShapePresetNames lists the ShapePreset vocabulary.
func ShapePresetNames() []string { return scenario.ShapePresetNames() }

// TransportChan returns the in-process transport factory — the default
// when LiveConfig.Transport is nil.
func TransportChan() TransportFactory { return transport.Chan() }

// TransportUDP returns the loopback-socket transport factory: one real
// datagram socket per peer, the wire codec on both ends, and
// datagram-size enforcement.
func TransportUDP() TransportFactory { return transport.UDP() }

// NewLive builds a real-concurrency cluster. Call Start to launch the
// peer goroutines and Stop to terminate them. The error comes from the
// configured transport (socket binds); with the default in-process
// transport it is always nil.
func NewLive(cfg LiveConfig) (*LiveCluster, error) { return live.NewCluster(cfg) }

// NewSim builds a deterministic simulated cluster of n peers.
func NewSim(n int, cfg SimConfig, opts SimOptions) *SimCluster {
	return core.NewCluster(n, cfg, opts)
}

// ParseFilter compiles subscription-language source text, e.g.
// `price > 100 && symbol in ["ACME", "GLOBEX"]`.
func ParseFilter(src string) (Filter, error) { return pubsub.Parse(src) }

// MustParseFilter is ParseFilter for constant filters; it panics on error.
func MustParseFilter(src string) Filter { return pubsub.MustParse(src) }

// TopicFilter matches events published on exactly the given topic.
func TopicFilter(topic string) Filter { return pubsub.Topic(topic) }

// TopicPrefixFilter matches a topic and all its dot-separated descendants.
func TopicPrefixFilter(prefix string) Filter { return pubsub.TopicPrefix(prefix) }

// MatchAll matches every event.
func MatchAll() Filter { return pubsub.MatchAll() }

// String returns a string attribute value.
func String(s string) Value { return pubsub.String(s) }

// Num returns a numeric attribute value.
func Num(f float64) Value { return pubsub.Num(f) }

// Bool returns a boolean attribute value.
func Bool(b bool) Value { return pubsub.Bool(b) }

// DefaultWeights returns the paper's Fig. 2 accounting weights.
func DefaultWeights() Weights { return fairness.DefaultWeights() }

// Scenario engine (see internal/scenario and SCENARIOS.md).
type (
	// Scenario is a seeded, declarative schedule of faults plus checked
	// invariants.
	Scenario = scenario.Scenario
	// ScenarioResult is the outcome of one scenario execution; Ok()
	// reports whether every invariant held.
	ScenarioResult = scenario.Result
)

// ScenarioNames lists the built-in scenarios in table order.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName returns a built-in scenario.
func ScenarioByName(name string) (Scenario, bool) { return scenario.ByName(name) }

// RunScenario executes a built-in scenario by name on the given runtime
// ("sim" — deterministic, same seed same result — "live", or "live-udp"
// over real loopback sockets) and returns the checked result.
func RunScenario(name, runtime string, seed int64) (*ScenarioResult, error) {
	sc, ok := scenario.ByName(name)
	if !ok {
		return nil, fmt.Errorf("fairgossip: unknown scenario %q (have %v)", name, scenario.Names())
	}
	return RunScenarioSpec(sc, runtime, seed)
}

// RunScenarioSpec executes an arbitrary (possibly custom) scenario.
func RunScenarioSpec(sc Scenario, runtime string, seed int64) (*ScenarioResult, error) {
	var rt scenario.Runtime
	switch runtime {
	case "sim", "":
		rt = scenario.NewSimRuntime(sc, seed)
	case "live":
		rt = scenario.NewLiveRuntime(sc, seed)
	case "live-udp":
		udp, err := scenario.NewLiveUDPRuntime(sc, seed)
		if err != nil {
			return nil, fmt.Errorf("fairgossip: udp runtime: %w", err)
		}
		rt = udp
	default:
		return nil, fmt.Errorf("fairgossip: unknown runtime %q (want sim, live or live-udp)", runtime)
	}
	return scenario.Execute(rt, sc, seed), nil
}
